package lockset

import (
	"kivati/internal/analysis"
	"kivati/internal/cfg"
	"kivati/internal/dataflow"
	"kivati/internal/minic"
)

// A lock is identified by the name of a global variable passed to
// lock()/unlock(): the builtins receive the *address* of their operand, so
// a global operand names one stable runtime lock. Operands that are locals
// name per-activation stack addresses (never a shared lock — ignored), and
// operands that are derefs or array elements can alias anything, so an
// unlock through one conservatively clobbers every tracked lock.

// opKind classifies one lock-relevant action inside a CFG node.
type opKind int

const (
	opAcquire    opKind = iota // lock(g), g a global: add g
	opRelease                  // unlock(g), g a global: remove g
	opReleaseAny               // unlock(<deref/element>): may release anything
	opCall                     // call to a user function: apply its summary
)

// op is one lock-relevant action; Name is the lock for acquire/release and
// the callee for opCall.
type op struct {
	kind opKind
	name string
}

// summary is one function's inter-procedural lock effect.
type summary struct {
	// mayRelease holds every lock the function (transitively) may unlock;
	// Top when it may unlock through an alias.
	mayRelease Set
	// mustAcquire holds the locks definitely held at the function's exit
	// when it is entered holding none.
	mustAcquire Set
}

// FuncInfo is the per-function analysis result.
type FuncInfo struct {
	Fn    *minic.FuncDecl
	Graph *cfg.Graph
	// Context is the set of locks held at every call site of this function
	// (Empty for thread entry points; Top for dead code).
	Context Set
	// In and Out are the solved must-locksets on entry to and exit from
	// each node, indexed by node ID, with Context folded in.
	In, Out []Set

	held     []Set           // heldThroughout cache, by node ID
	ops      map[int][]op    // lock-relevant ops per node, in evaluation order
	shadowed map[string]bool // global names hidden by a param or local
}

// Options configure Compute.
type Options struct {
	// Roots names additional thread entry functions — functions a host may
	// start directly (core.Start) — whose calling context must be assumed
	// empty. main, spawn targets and functions with no call sites are
	// always roots.
	Roots []string
}

// Info is the whole-program lockset analysis result.
type Info struct {
	Prog  *minic.Program
	Funcs map[string]*FuncInfo

	order     []string // prog.Funcs order, for deterministic iteration
	sums      map[string]*summary
	addrTaken map[string]bool // globals whose address is taken somewhere
	syncVars  map[string]bool // globals used as lock/unlock operands
	globals   map[string]bool
	cand      map[string]Set // global -> candidate lockset (Eraser)
}

// Compute runs the analysis. graphs, if non-nil, supplies prebuilt CFGs by
// function name (the annotator passes its own so node identities match);
// missing entries are built here.
func Compute(prog *minic.Program, graphs map[string]*cfg.Graph, opts Options) *Info {
	info := &Info{
		Prog:      prog,
		Funcs:     map[string]*FuncInfo{},
		sums:      map[string]*summary{},
		addrTaken: map[string]bool{},
		syncVars:  map[string]bool{},
		globals:   map[string]bool{},
		cand:      map[string]Set{},
	}
	for _, g := range prog.Globals {
		info.globals[g.Name] = true
	}
	for _, fn := range prog.Funcs {
		info.order = append(info.order, fn.Name)
		g := graphs[fn.Name]
		if g == nil {
			g = cfg.Build(fn)
		}
		fi := &FuncInfo{Fn: fn, Graph: g, shadowed: map[string]bool{}}
		for _, p := range fn.Params {
			fi.shadowed[p.Name] = true
		}
		walkStmts(fn.Body, func(s minic.Stmt) {
			if d, ok := s.(*minic.DeclStmt); ok {
				fi.shadowed[d.Decl.Name] = true
			}
		})
		fi.ops = map[int][]op{}
		for _, n := range g.Nodes {
			if ops := info.nodeOps(fi, n); len(ops) > 0 {
				fi.ops[n.ID] = ops
			}
		}
		info.Funcs[fn.Name] = fi
	}
	info.scanAddressesAndSyncVars()
	info.solveSummaries()
	info.solveContexts(opts)
	info.finish()
	return info
}

// nodeOps extracts the node's lock-relevant actions in evaluation order:
// a call's arguments act before the call itself.
func (i *Info) nodeOps(fi *FuncInfo, n *cfg.Node) []op {
	var out []op
	emit := func(c *minic.Call) {
		switch c.Name {
		case "lock", "unlock":
			acquire := c.Name == "lock"
			if id, ok := c.Args[0].(*minic.Ident); ok {
				if i.globals[id.Name] && !fi.shadowed[id.Name] {
					if acquire {
						out = append(out, op{opAcquire, id.Name})
					} else {
						out = append(out, op{opRelease, id.Name})
					}
				}
				// A local operand names a per-activation stack address:
				// never a tracked lock, no effect either way.
				return
			}
			// Deref or element operand: the address can alias any lock.
			if !acquire {
				out = append(out, op{opReleaseAny, ""})
			}
		default:
			if i.Prog.Func(c.Name) != nil {
				out = append(out, op{opCall, c.Name})
			}
		}
	}
	switch n.Kind {
	case cfg.KindCond:
		walkExprCalls(n.Cond, emit)
	case cfg.KindStmt:
		walkStmtCalls(n.Stmt, emit)
	}
	return out
}

// apply folds one op into a lockset.
func (i *Info) apply(s Set, o op) Set {
	switch o.kind {
	case opAcquire:
		return s.Add(o.name)
	case opRelease:
		return s.Remove(o.name)
	case opReleaseAny:
		return Empty()
	default: // opCall
		sum := i.sums[o.name]
		if sum == nil {
			return s
		}
		return s.Subtract(sum.mayRelease).Union(sum.mustAcquire)
	}
}

// lockAnalysis adapts the must-lockset problem to the dataflow framework:
// top as the initial fact, intersection join, op-folding transfer.
type lockAnalysis struct {
	info  *Info
	fi    *FuncInfo
	entry Set
}

func (lockAnalysis) Bottom() dataflow.Facts { return Top() }
func (a lockAnalysis) Entry() dataflow.Facts {
	return a.entry
}
func (lockAnalysis) Join(x, y dataflow.Facts) dataflow.Facts {
	return x.(Set).Intersect(y.(Set))
}
func (a lockAnalysis) Transfer(n *cfg.Node, in dataflow.Facts) dataflow.Facts {
	s := in.(Set)
	for _, o := range a.fi.ops[n.ID] {
		s = a.info.apply(s, o)
	}
	return s
}

// solve runs the intra-procedural fixpoint for one function with the given
// entry lockset, storing the solution in fi.In/fi.Out.
func (i *Info) solve(fi *FuncInfo, entry Set) {
	res := dataflow.Solve(fi.Graph, lockAnalysis{info: i, fi: fi, entry: entry})
	fi.In = make([]Set, len(res.In))
	fi.Out = make([]Set, len(res.Out))
	for id := range res.In {
		fi.In[id] = res.In[id].(Set)
		fi.Out[id] = res.Out[id].(Set)
	}
}

// scanAddressesAndSyncVars records address-taken globals (a global whose
// address escapes may be accessed through pointers the name-based analysis
// cannot see, so it is never classifiable) and lock-operand globals.
func (i *Info) scanAddressesAndSyncVars() {
	for _, name := range i.order {
		fi := i.Funcs[name]
		walkStmts(fi.Fn.Body, func(s minic.Stmt) {
			walkStmtExprs(s, func(x minic.Expr) {
				switch e := x.(type) {
				case *minic.Unary:
					if e.Op != "&" {
						return
					}
					var base string
					switch t := e.X.(type) {
					case *minic.Ident:
						base = t.Name
					case *minic.Index:
						base = t.Name
					}
					if i.globals[base] && !fi.shadowed[base] {
						i.addrTaken[base] = true
					}
				case *minic.Call:
					if e.Name == "lock" || e.Name == "unlock" {
						if id, ok := e.Args[0].(*minic.Ident); ok {
							if i.globals[id.Name] && !fi.shadowed[id.Name] {
								i.syncVars[id.Name] = true
							}
						}
					}
				}
			})
		})
	}
}

// solveSummaries computes the call-graph fixpoints: mayRelease (a transitive
// union over syntactic releases) first, then mustAcquire (repeated intra
// solves from an empty entry, monotone once mayRelease is fixed).
func (i *Info) solveSummaries() {
	for _, name := range i.order {
		i.sums[name] = &summary{mayRelease: Empty(), mustAcquire: Empty()}
	}
	for changed := true; changed; {
		changed = false
		for _, name := range i.order {
			fi := i.Funcs[name]
			mr := i.sums[name].mayRelease
			for _, ops := range fi.ops {
				for _, o := range ops {
					switch o.kind {
					case opRelease:
						mr = mr.Add(o.name)
					case opReleaseAny:
						mr = Top()
					case opCall:
						mr = mr.Union(i.sums[o.name].mayRelease)
					}
				}
			}
			if !mr.Equal(i.sums[name].mayRelease) {
				i.sums[name].mayRelease = mr
				changed = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, name := range i.order {
			fi := i.Funcs[name]
			i.solve(fi, Empty())
			ma := fi.Out[fi.Graph.Exit.ID]
			if !ma.Equal(i.sums[name].mustAcquire) {
				i.sums[name].mustAcquire = ma
				changed = true
			}
		}
	}
}

// roots returns the thread entry functions: main, spawn targets, functions
// no one calls, and any extras the caller names.
func (i *Info) roots(opts Options) map[string]bool {
	roots := map[string]bool{"main": true}
	called := map[string]bool{}
	for _, name := range i.order {
		fi := i.Funcs[name]
		walkStmts(fi.Fn.Body, func(s minic.Stmt) {
			walkStmtCalls(s, func(c *minic.Call) {
				if i.Prog.Func(c.Name) != nil {
					called[c.Name] = true
				}
				if c.Name == "spawn" && len(c.Args) > 0 {
					if id, ok := c.Args[0].(*minic.Ident); ok {
						roots[id.Name] = true
					}
				}
			})
		})
	}
	for _, name := range i.order {
		if !called[name] {
			roots[name] = true
		}
	}
	for _, name := range opts.Roots {
		roots[name] = true
	}
	return roots
}

// solveContexts iterates the calling-context fixpoint: each function's
// context is the intersection of the locksets at all of its call sites
// (Empty for roots), shrinking monotonically from Top.
func (i *Info) solveContexts(opts Options) {
	roots := i.roots(opts)
	ctx := map[string]Set{}
	for _, name := range i.order {
		if roots[name] {
			ctx[name] = Empty()
		} else {
			ctx[name] = Top()
		}
	}
	for changed := true; changed; {
		changed = false
		for _, name := range i.order {
			i.solve(i.Funcs[name], ctx[name])
		}
		next := map[string]Set{}
		for _, name := range i.order {
			if roots[name] {
				next[name] = Empty()
			} else {
				next[name] = Top()
			}
		}
		for _, name := range i.order {
			fi := i.Funcs[name]
			for _, n := range fi.Graph.Nodes {
				cur := fi.In[n.ID]
				for _, o := range fi.ops[n.ID] {
					if o.kind == opCall {
						next[o.name] = next[o.name].Intersect(cur)
					}
					cur = i.apply(cur, o)
				}
			}
		}
		for _, name := range i.order {
			if !next[name].Equal(ctx[name]) {
				ctx[name] = next[name]
				changed = true
			}
		}
	}
	for _, name := range i.order {
		fi := i.Funcs[name]
		fi.Context = ctx[name]
		i.solve(fi, ctx[name])
	}
}

// finish caches per-node held-throughout sets and computes the per-global
// candidate locksets.
func (i *Info) finish() {
	for _, name := range i.order {
		fi := i.Funcs[name]
		fi.held = make([]Set, len(fi.Graph.Nodes))
		for _, n := range fi.Graph.Nodes {
			released := Empty()
			for _, o := range fi.ops[n.ID] {
				switch o.kind {
				case opRelease:
					released = released.Add(o.name)
				case opReleaseAny:
					released = Top()
				case opCall:
					released = released.Union(i.sums[o.name].mayRelease)
				}
			}
			fi.held[n.ID] = fi.In[n.ID].Intersect(fi.Out[n.ID]).Subtract(released)
		}
	}
	for g := range i.globals {
		i.cand[g] = Top()
	}
	for _, name := range i.order {
		fi := i.Funcs[name]
		for _, n := range fi.Graph.Nodes {
			for _, a := range analysis.NodeAccesses(n) {
				if a.Key.Deref || !i.globals[a.Key.Name] || fi.shadowed[a.Key.Name] {
					continue
				}
				i.cand[a.Key.Name] = i.cand[a.Key.Name].Intersect(fi.held[n.ID])
			}
		}
	}
}

// HeldThroughout returns the locks provably held across the whole of node n
// of function fn: held on entry, held on exit, and never released inside.
func (i *Info) HeldThroughout(fn string, n *cfg.Node) Set {
	fi := i.Funcs[fn]
	if fi == nil || n.ID >= len(fi.held) {
		return Empty()
	}
	return fi.held[n.ID]
}

// Candidate returns the Eraser candidate lockset of a global: the
// intersection of the locksets over every named access to it, program-wide.
// ok is false for names that are not globals.
func (i *Info) Candidate(global string) (Set, bool) {
	s, ok := i.cand[global]
	return s, ok
}

// SyncVar reports whether the global is used as a lock/unlock operand.
func (i *Info) SyncVar(global string) bool { return i.syncVars[global] }

// AddressTaken reports whether the global's address is taken anywhere.
func (i *Info) AddressTaken(global string) bool { return i.addrTaken[global] }

// regionNodes returns every node on some first→second path, endpoints
// included.
func regionNodes(g *cfg.Graph, first, second *cfg.Node) []*cfg.Node {
	fwd := reach(g, first, func(n *cfg.Node) []*cfg.Node { return n.Succs })
	bwd := reach(g, second, func(n *cfg.Node) []*cfg.Node { return n.Preds })
	var out []*cfg.Node
	for _, n := range g.Nodes {
		if fwd[n.ID] && bwd[n.ID] {
			out = append(out, n)
		}
	}
	return out
}

func reach(g *cfg.Graph, from *cfg.Node, next func(*cfg.Node) []*cfg.Node) []bool {
	seen := make([]bool, len(g.Nodes))
	work := []*cfg.Node{from}
	seen[from.ID] = true
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range next(n) {
			if !seen[s.ID] {
				seen[s.ID] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// ProveRegion attempts the static serializability proof for an atomic
// region on varName whose accesses anchor at nodes first and second of
// function fn. It returns a lock that (a) every access to varName anywhere
// in the program holds and (b) is provably held across every node on every
// first→second path — so no conflicting remote access can interleave with
// the region, which is therefore benign. Globals whose address is taken or
// that are themselves lock operands are never proven.
func (i *Info) ProveRegion(fn, varName string, first, second *cfg.Node) (string, bool) {
	fi := i.Funcs[fn]
	if fi == nil || !i.globals[varName] || fi.shadowed[varName] {
		return "", false
	}
	if i.addrTaken[varName] || i.syncVars[varName] {
		return "", false
	}
	cand := i.cand[varName]
	if cand.IsTop() || cand.IsEmpty() {
		return "", false
	}
	held := Top()
	for _, n := range regionNodes(fi.Graph, first, second) {
		held = held.Intersect(fi.held[n.ID])
	}
	pick := cand.Intersect(held)
	if pick.IsTop() || pick.IsEmpty() {
		return "", false
	}
	return pick.Names()[0], true
}

// --- AST walkers (evaluation order) ---

func walkStmts(b *minic.Block, f func(minic.Stmt)) {
	for _, s := range b.Stmts {
		f(s)
		switch st := s.(type) {
		case *minic.IfStmt:
			walkStmts(st.Then, f)
			if st.Else != nil {
				walkStmts(st.Else, f)
			}
		case *minic.WhileStmt:
			walkStmts(st.Body, f)
		}
	}
}

// walkStmtExprs visits the statement's own expressions (not nested blocks).
func walkStmtExprs(s minic.Stmt, f func(minic.Expr)) {
	var walk func(minic.Expr)
	walk = func(x minic.Expr) {
		if x == nil {
			return
		}
		f(x)
		switch e := x.(type) {
		case *minic.Unary:
			walk(e.X)
		case *minic.Binary:
			walk(e.X)
			walk(e.Y)
		case *minic.Index:
			walk(e.Idx)
		case *minic.Call:
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	switch st := s.(type) {
	case *minic.DeclStmt:
		walk(st.Decl.Init)
	case *minic.AssignStmt:
		walk(st.LHS)
		walk(st.RHS)
	case *minic.ExprStmt:
		walk(st.X)
	case *minic.ReturnStmt:
		walk(st.X)
	case *minic.IfStmt:
		walk(st.Cond)
	case *minic.WhileStmt:
		walk(st.Cond)
	}
}

// walkExprCalls visits calls in x in evaluation order (arguments first).
func walkExprCalls(x minic.Expr, f func(*minic.Call)) {
	switch e := x.(type) {
	case *minic.Call:
		if e.Name == "spawn" && len(e.Args) == 2 {
			// The function-name argument is not an expression evaluation.
			walkExprCalls(e.Args[1], f)
		} else {
			for _, a := range e.Args {
				walkExprCalls(a, f)
			}
		}
		f(e)
	case *minic.Unary:
		walkExprCalls(e.X, f)
	case *minic.Binary:
		walkExprCalls(e.X, f)
		walkExprCalls(e.Y, f)
	case *minic.Index:
		walkExprCalls(e.Idx, f)
	}
}

// walkStmtCalls visits the statement's calls in evaluation order.
func walkStmtCalls(s minic.Stmt, f func(*minic.Call)) {
	switch st := s.(type) {
	case *minic.DeclStmt:
		if st.Decl.Init != nil {
			walkExprCalls(st.Decl.Init, f)
		}
	case *minic.AssignStmt:
		walkExprCalls(st.RHS, f)
		walkExprCalls(st.LHS, f)
	case *minic.ExprStmt:
		walkExprCalls(st.X, f)
	case *minic.ReturnStmt:
		if st.X != nil {
			walkExprCalls(st.X, f)
		}
	case *minic.IfStmt:
		walkExprCalls(st.Cond, f)
	case *minic.WhileStmt:
		walkExprCalls(st.Cond, f)
	}
}
