// Package lockset implements a flow-sensitive, Eraser-style lockset
// analysis over MiniC programs: for every program point it computes the set
// of locks *provably* held there, and for every shared variable the
// candidate lockset — the intersection of the locksets at all of its
// accesses program-wide. Two clients grow out of it:
//
//   - the static benign-AR classifier (annotate.Program.Proofs): an atomic
//     region both of whose accesses run under a lock that (a) is held
//     continuously across the region and (b) protects every access to the
//     variable anywhere in the program is provably serializable — no
//     conflicting remote access can interleave — so it can be whitelisted
//     or dropped at annotation time, before the first training run;
//   - the Eraser-style lint (Races): shared variables whose candidate
//     lockset is empty are reported as static race diagnostics.
//
// The analysis is a must-dataflow over the internal/cfg graphs solved with
// the internal/dataflow worklist framework (join = set intersection, top =
// the universal set), made inter-procedural by a call-graph fixpoint in the
// style of internal/analysis/effects.go: per-function lock summaries (locks
// a callee may release, locks it definitely acquires) feed call transfer
// functions, and per-function calling contexts (locks held at every call
// site) seed the entry fact.
package lockset

import (
	"sort"
	"strings"

	"kivati/internal/dataflow"
)

// Set is an immutable set of lock names, with a distinguished Top value
// (the universal set) serving as the must-analysis lattice top: the initial
// fact of unvisited nodes and the calling context of dead code. All
// operations return new values.
type Set struct {
	top   bool
	names []string // sorted, unique; nil when top
}

// Top returns the universal lockset.
func Top() Set { return Set{top: true} }

// Empty returns the empty lockset.
func Empty() Set { return Set{} }

// Of returns the lockset holding exactly the given names.
func Of(names ...string) Set {
	s := Set{}
	for _, n := range names {
		s = s.Add(n)
	}
	return s
}

// IsTop reports whether s is the universal set.
func (s Set) IsTop() bool { return s.top }

// IsEmpty reports whether s holds no locks (Top is not empty).
func (s Set) IsEmpty() bool { return !s.top && len(s.names) == 0 }

// Len returns the number of locks (unbounded for Top).
func (s Set) Len() int { return len(s.names) }

// Has reports whether the named lock is in the set.
func (s Set) Has(name string) bool {
	if s.top {
		return true
	}
	i := sort.SearchStrings(s.names, name)
	return i < len(s.names) && s.names[i] == name
}

// Names returns the sorted lock names (nil for Top).
func (s Set) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Add returns s ∪ {name}. Top absorbs.
func (s Set) Add(name string) Set {
	if s.top || s.Has(name) {
		return s
	}
	out := make([]string, 0, len(s.names)+1)
	out = append(out, s.names...)
	out = append(out, name)
	sort.Strings(out)
	return Set{names: out}
}

// Remove returns s − {name}. Removing from Top keeps Top: Top only ever
// describes unexecuted code, where any value is vacuously sound.
func (s Set) Remove(name string) Set {
	if s.top || !s.Has(name) {
		return s
	}
	out := make([]string, 0, len(s.names)-1)
	for _, n := range s.names {
		if n != name {
			out = append(out, n)
		}
	}
	return Set{names: out}
}

// Intersect returns s ∩ o; Top is the identity.
func (s Set) Intersect(o Set) Set {
	if s.top {
		return o
	}
	if o.top {
		return s
	}
	var out []string
	for _, n := range s.names {
		if o.Has(n) {
			out = append(out, n)
		}
	}
	return Set{names: out}
}

// Union returns s ∪ o; Top absorbs.
func (s Set) Union(o Set) Set {
	if s.top || o.top {
		return Top()
	}
	out := s
	for _, n := range o.names {
		out = out.Add(n)
	}
	return out
}

// Subtract returns s − o. Subtracting Top yields Empty; subtracting from
// Top keeps Top (see Remove).
func (s Set) Subtract(o Set) Set {
	if o.top {
		if s.top {
			return s
		}
		return Empty()
	}
	out := s
	for _, n := range o.names {
		out = out.Remove(n)
	}
	return out
}

// Equal implements dataflow.Facts.
func (s Set) Equal(other dataflow.Facts) bool {
	o := other.(Set)
	if s.top != o.top || len(s.names) != len(o.names) {
		return false
	}
	for i, n := range s.names {
		if o.names[i] != n {
			return false
		}
	}
	return true
}

func (s Set) String() string {
	if s.top {
		return "{⊤}"
	}
	return "{" + strings.Join(s.names, ",") + "}"
}
