// Package compile lowers annotated MiniC programs to the machine's
// variable-length binary ISA. Beyond code generation it produces the two
// artifacts Kivati's kernel needs (§3.3): the instruction-boundary table
// from the binary pre-processing pass, and the subroutine entry list for the
// indirect-call special case. It also records a PC→source-position map so
// violation reports can name source lines, and the set of synchronization
// variables (lock/unlock operands) used to seed the whitelist
// (optimization 4).
package compile

import (
	"fmt"
	"sort"

	"kivati/internal/annotate"
	"kivati/internal/hw"
	"kivati/internal/isa"
	"kivati/internal/minic"
)

// Options control code generation.
type Options struct {
	// Annotate emits begin_atomic/end_atomic/clear_ar syscalls. False
	// produces the vanilla binary used as the performance baseline.
	Annotate bool
	// ShadowWrites duplicates stores that are the first local write of an
	// AR into the shadow page (required when running with optimization 3,
	// which disables watchpoints for the local thread).
	ShadowWrites bool
}

// PCPos maps a code offset to the source position of the statement it
// belongs to.
type PCPos struct {
	PC  uint32
	Pos minic.Pos
}

// Binary is a compiled program image.
type Binary struct {
	Code        []byte
	Funcs       map[string]uint32 // function name -> entry PC
	FuncEntries []uint32
	ExitStub    uint32            // PC of the thread-exit stub
	Globals     map[string]uint32 // global name -> address
	InitMem     map[uint32]int64  // initial memory values (global initializers)
	Boundary    *isa.BoundaryTable
	// Footprints is the per-PC static address footprint of the straight-line
	// suffix starting at each instruction (see footprint.go); the VM's
	// superstep dispatcher tests it against the armed watchpoint window.
	Footprints []isa.Footprint
	SyncVars   map[string]bool // names passed to lock/unlock
	Annotated  *annotate.Program
	Opts       Options

	pcpos []PCPos // sorted by PC
}

// PosAt returns the source position of the statement containing pc.
func (b *Binary) PosAt(pc uint32) (minic.Pos, bool) {
	i := sort.Search(len(b.pcpos), func(i int) bool { return b.pcpos[i].PC > pc })
	if i == 0 {
		return minic.Pos{}, false
	}
	return b.pcpos[i-1].Pos, true
}

// FuncAt returns the name of the function containing pc, or "".
func (b *Binary) FuncAt(pc uint32) string {
	name, best := "", uint32(0)
	for n, entry := range b.Funcs {
		if entry <= pc && entry >= best {
			name, best = n, entry
		}
	}
	return name
}

// scratch registers available to expression evaluation.
const (
	scratchLo = 1
	scratchHi = 7
	argRegLo  = 8 // user-call arguments go in R8..R13
	maxArgs   = 6
)

type cg struct {
	enc    *isa.Encoder
	bin    *Binary
	ap     *annotate.Program
	opts   Options
	fn     *minic.FuncDecl
	fa     *annotate.FuncAnnotations
	locals map[string]int32 // name -> frame offset (slot at FP-off)
	frame  int32
	labelN int

	alloced [scratchHi + 1]bool // index = register number

	stmtNode map[minic.Stmt]*cfgNodeAnns
	condNode map[minic.Stmt]*cfgNodeAnns
}

// cfgNodeAnns caches the begin/end AR lists for one CFG node.
type cfgNodeAnns struct {
	begin []*annotate.AR
	end   []*annotate.AR
}

// Compile lowers an annotated program. Code-generation capacity limits
// (e.g. expressions deeper than the scratch register pool) surface as
// errors, not panics.
func Compile(ap *annotate.Program, opts Options) (bin *Binary, err error) {
	defer func() {
		if r := recover(); r != nil {
			bin, err = nil, fmt.Errorf("compile: %v", r)
		}
	}()
	return compileProgram(ap, opts)
}

func compileProgram(ap *annotate.Program, opts Options) (*Binary, error) {
	bin := &Binary{
		Funcs:     make(map[string]uint32),
		Globals:   make(map[string]uint32),
		InitMem:   make(map[uint32]int64),
		SyncVars:  collectSyncVars(ap.Prog),
		Annotated: ap,
		Opts:      opts,
	}
	// Lay out globals.
	addr := GlobalsBase
	for _, g := range ap.Prog.Globals {
		bin.Globals[g.Name] = addr
		if g.Init != nil {
			bin.InitMem[addr] = g.Init.(*minic.IntLit).V
		}
		addr += uint32(g.Type.Size())
		// Keep variables 8-byte aligned and non-adjacent enough that an
		// 8-byte watchpoint on one never overlaps its neighbor.
		addr = (addr + 7) &^ 7
	}
	if addr >= StackBase {
		return nil, fmt.Errorf("compile: globals exceed %d bytes", StackBase-GlobalsBase)
	}

	enc := isa.NewEncoder()
	// Thread exit stub at PC 0: new threads get this as their return
	// address, and falling off a void function lands here.
	bin.ExitStub = enc.PC()
	enc.Sys(isa.SysExit)

	for _, fa := range ap.Funcs {
		c := &cg{enc: enc, bin: bin, ap: ap, opts: opts, fn: fa.Fn, fa: fa}
		if err := c.function(); err != nil {
			return nil, err
		}
	}
	code, err := enc.Finish()
	if err != nil {
		return nil, err
	}
	bin.Code = code
	for _, fa := range ap.Funcs {
		pc, _ := enc.LabelPC("fn_" + fa.Fn.Name)
		bin.Funcs[fa.Fn.Name] = pc
		bin.FuncEntries = append(bin.FuncEntries, pc)
	}
	bt, err := isa.Preprocess(code, bin.FuncEntries)
	if err != nil {
		return nil, fmt.Errorf("compile: preprocessing pass: %w", err)
	}
	bin.Boundary = bt
	fps, err := FootprintsAnalyzed(code, bin.FuncEntries)
	if err != nil {
		return nil, fmt.Errorf("compile: footprint pass: %w", err)
	}
	bin.Footprints = fps
	return bin, nil
}

func collectSyncVars(prog *minic.Program) map[string]bool {
	out := map[string]bool{}
	var walkExpr func(x minic.Expr)
	walkExpr = func(x minic.Expr) {
		switch e := x.(type) {
		case *minic.Call:
			if e.Name == "lock" || e.Name == "unlock" {
				if id, ok := e.Args[0].(*minic.Ident); ok {
					out[id.Name] = true
				}
			}
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *minic.Unary:
			walkExpr(e.X)
		case *minic.Binary:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *minic.Index:
			walkExpr(e.Idx)
		}
	}
	var walkBlock func(b *minic.Block)
	walkStmt := func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.AssignStmt:
			walkExpr(st.LHS)
			walkExpr(st.RHS)
		case *minic.DeclStmt:
			if st.Decl.Init != nil {
				walkExpr(st.Decl.Init)
			}
		case *minic.ExprStmt:
			walkExpr(st.X)
		case *minic.ReturnStmt:
			if st.X != nil {
				walkExpr(st.X)
			}
		case *minic.IfStmt:
			walkExpr(st.Cond)
		case *minic.WhileStmt:
			walkExpr(st.Cond)
		}
	}
	walkBlock = func(b *minic.Block) {
		for _, s := range b.Stmts {
			walkStmt(s)
			switch st := s.(type) {
			case *minic.IfStmt:
				walkBlock(st.Then)
				if st.Else != nil {
					walkBlock(st.Else)
				}
			case *minic.WhileStmt:
				walkBlock(st.Body)
			}
		}
	}
	for _, f := range prog.Funcs {
		walkBlock(f.Body)
	}
	return out
}

func (c *cg) label(kind string) string {
	c.labelN++
	return fmt.Sprintf("%s_%s%d", c.fn.Name, kind, c.labelN)
}

func (c *cg) alloc() uint8 {
	for r := scratchLo; r <= scratchHi; r++ {
		if !c.alloced[r] {
			c.alloced[r] = true
			return uint8(r)
		}
	}
	panic(fmt.Sprintf("compile: %s: expression too deep (out of scratch registers)", c.fn.Name))
}

func (c *cg) free(r uint8) {
	if r < scratchLo || r > scratchHi || !c.alloced[r] {
		panic(fmt.Sprintf("compile: bad free of r%d", r))
	}
	c.alloced[r] = false
}

func (c *cg) allocatedScratch() []uint8 {
	var out []uint8
	for r := scratchLo; r <= scratchHi; r++ {
		if c.alloced[r] {
			out = append(out, uint8(r))
		}
	}
	return out
}

func (c *cg) mark(pos minic.Pos) {
	c.bin.pcpos = append(c.bin.pcpos, PCPos{PC: c.enc.PC(), Pos: pos})
}

// function compiles one function: prologue (frame setup, parameter spill),
// body, and a shared epilogue carrying the clear_ar annotation.
func (c *cg) function() error {
	c.enc.Label("fn_" + c.fn.Name)
	c.mark(c.fn.Pos)

	// Index CFG nodes by statement / condition owner.
	c.stmtNode = map[minic.Stmt]*cfgNodeAnns{}
	c.condNode = map[minic.Stmt]*cfgNodeAnns{}
	for _, n := range c.fa.Graph.Nodes {
		anns := &cfgNodeAnns{begin: c.fa.Begin[n], end: c.fa.End[n]}
		sort.Slice(anns.begin, func(i, j int) bool { return anns.begin[i].ID < anns.begin[j].ID })
		sort.Slice(anns.end, func(i, j int) bool { return anns.end[i].ID < anns.end[j].ID })
		if len(anns.begin) == 0 && len(anns.end) == 0 {
			continue
		}
		switch {
		case n.Stmt != nil:
			c.stmtNode[n.Stmt] = anns
		case n.Owner != nil:
			c.condNode[n.Owner] = anns
		}
	}

	// Frame layout: parameters first, then locals, each one 8-byte slot
	// (arrays get ArrayLen slots).
	c.locals = map[string]int32{}
	c.frame = 0
	addLocal := func(d *minic.VarDecl) error {
		if _, dup := c.locals[d.Name]; dup {
			return fmt.Errorf("compile: duplicate local %q in %s", d.Name, c.fn.Name)
		}
		c.frame += int32(d.Type.Size())
		c.locals[d.Name] = c.frame
		return nil
	}
	for _, p := range c.fn.Params {
		if err := addLocal(p); err != nil {
			return err
		}
	}
	var collect func(b *minic.Block) error
	collect = func(b *minic.Block) error {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *minic.DeclStmt:
				if err := addLocal(st.Decl); err != nil {
					return err
				}
			case *minic.IfStmt:
				if err := collect(st.Then); err != nil {
					return err
				}
				if st.Else != nil {
					if err := collect(st.Else); err != nil {
						return err
					}
				}
			case *minic.WhileStmt:
				if err := collect(st.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := collect(c.fn.Body); err != nil {
		return err
	}
	if len(c.fn.Params) > maxArgs {
		return fmt.Errorf("compile: %s: more than %d parameters", c.fn.Name, maxArgs)
	}

	// Prologue.
	c.enc.Push(isa.RegFP)
	c.enc.MovReg(isa.RegFP, isa.RegSP)
	if c.frame > 0 {
		c.enc.AddImm(isa.RegSP, isa.RegSP, -c.frame)
	}
	// Spill parameters to their slots so they have addresses.
	for i, p := range c.fn.Params {
		c.enc.StoreReg(isa.RegFP, -c.locals[p.Name], uint8(argRegLo+i), 8)
	}

	epilogue := "fn_" + c.fn.Name + "_epilogue"
	if err := c.block(c.fn.Body, epilogue); err != nil {
		return err
	}

	// Epilogue: clear_ar at every subroutine exit (§3.1), then frame
	// teardown.
	c.enc.Label(epilogue)
	if c.opts.Annotate {
		c.enc.Sys(isa.SysClearAR)
	}
	c.enc.MovReg(isa.RegSP, isa.RegFP)
	c.enc.Pop(isa.RegFP)
	c.enc.Ret()
	return nil
}

func (c *cg) block(b *minic.Block, epilogue string) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s, epilogue); err != nil {
			return err
		}
	}
	return nil
}

// emitBegins emits the begin_atomic syscalls for a node. Must be called with
// no scratch registers allocated.
func (c *cg) emitBegins(anns *cfgNodeAnns) {
	if anns == nil || !c.opts.Annotate {
		return
	}
	for _, ar := range anns.begin {
		a := c.alloc()
		c.evalAddr(ar.Target, a)
		if a != 1 {
			c.enc.MovReg(1, a)
		}
		c.free(a)
		c.enc.MovImm(0, int64(ar.ID))
		c.enc.MovImm(2, int64(ar.Size))
		c.enc.MovImm(3, int64(ar.Watch))
		c.enc.MovImm(4, int64(ar.First))
		c.enc.Sys(isa.SysBeginAtomic)
	}
}

func (c *cg) emitEnds(anns *cfgNodeAnns) {
	if !c.hasEnds(anns) {
		return
	}
	for _, ar := range anns.end {
		c.enc.MovImm(0, int64(ar.ID))
		c.enc.MovImm(1, int64(ar.Second))
		c.enc.Sys(isa.SysEndAtomic)
	}
}

func (c *cg) hasEnds(anns *cfgNodeAnns) bool {
	return anns != nil && c.opts.Annotate && len(anns.end) > 0
}

// emitEndsPreserving emits end_atomic annotations while keeping the value of
// register r intact (the end_atomic ABI clobbers R0 and R1, which may hold a
// live condition result or return value).
func (c *cg) emitEndsPreserving(anns *cfgNodeAnns, r uint8) {
	if !c.hasEnds(anns) {
		return
	}
	if r <= 1 {
		c.enc.Push(r)
		c.emitEnds(anns)
		c.enc.Pop(r)
		return
	}
	c.emitEnds(anns)
}

// needsShadow reports whether the store in this statement must be duplicated
// into the shadow page: it is the first local access of some AR and that
// access is a write.
func (c *cg) needsShadow(anns *cfgNodeAnns) bool {
	if anns == nil || !c.opts.ShadowWrites || !c.opts.Annotate {
		return false
	}
	for _, ar := range anns.begin {
		if ar.First == hw.Write {
			return true
		}
	}
	return false
}

func (c *cg) stmt(s minic.Stmt, epilogue string) error {
	anns := c.stmtNode[s]
	switch st := s.(type) {
	case *minic.DeclStmt:
		c.mark(st.Pos)
		c.emitBegins(anns)
		if st.Decl.Init != nil {
			r := c.alloc()
			c.evalExpr(st.Decl.Init, r)
			c.enc.StoreReg(isa.RegFP, -c.locals[st.Decl.Name], r, 8)
			if c.needsShadow(anns) {
				c.shadowStoreLocal(st.Decl.Name, r)
			}
			c.free(r)
		}
		c.emitEnds(anns)
	case *minic.AssignStmt:
		c.mark(st.Pos)
		c.emitBegins(anns)
		r := c.alloc()
		c.evalExpr(st.RHS, r)
		c.store(st.LHS, r, c.needsShadow(anns))
		c.free(r)
		c.emitEnds(anns)
	case *minic.ExprStmt:
		c.mark(st.Pos)
		c.emitBegins(anns)
		r := c.alloc()
		c.evalExpr(st.X, r)
		c.free(r)
		c.emitEnds(anns)
	case *minic.ReturnStmt:
		c.mark(st.Pos)
		c.emitBegins(anns)
		if st.X != nil {
			r := c.alloc()
			c.evalExpr(st.X, r)
			c.emitEndsPreserving(anns, r)
			c.enc.MovReg(0, r)
			c.free(r)
		} else {
			c.enc.MovImm(0, 0)
			c.emitEnds(anns)
		}
		c.enc.Jmp(epilogue)
	case *minic.IfStmt:
		c.mark(st.Pos)
		condAnns := c.condNode[s]
		c.emitBegins(condAnns)
		r := c.alloc()
		c.evalExpr(st.Cond, r)
		c.emitEndsPreserving(condAnns, r)
		elseL := c.label("else")
		endL := c.label("endif")
		c.enc.Jz(r, elseL)
		c.free(r)
		if err := c.block(st.Then, epilogue); err != nil {
			return err
		}
		if st.Else != nil {
			c.enc.Jmp(endL)
			c.enc.Label(elseL)
			if err := c.block(st.Else, epilogue); err != nil {
				return err
			}
			c.enc.Label(endL)
		} else {
			c.enc.Label(elseL)
		}
	case *minic.WhileStmt:
		c.mark(st.Pos)
		condAnns := c.condNode[s]
		topL := c.label("while")
		outL := c.label("endwhile")
		c.enc.Label(topL)
		c.emitBegins(condAnns)
		r := c.alloc()
		c.evalExpr(st.Cond, r)
		c.emitEndsPreserving(condAnns, r)
		c.enc.Jz(r, outL)
		c.free(r)
		if err := c.block(st.Body, epilogue); err != nil {
			return err
		}
		c.enc.Jmp(topL)
		c.enc.Label(outL)
	case *minic.AnnotStmt:
		return fmt.Errorf("compile: AnnotStmt in AST; the compiler consumes annotation maps, not AST annotations")
	default:
		return fmt.Errorf("compile: unknown statement %T", s)
	}
	return nil
}

// store writes register r to the lvalue, optionally duplicating into the
// shadow page.
func (c *cg) store(lhs minic.Expr, r uint8, shadow bool) {
	switch e := lhs.(type) {
	case *minic.Ident:
		if off, ok := c.locals[e.Name]; ok {
			c.enc.StoreReg(isa.RegFP, -off, r, 8)
			if shadow {
				c.shadowStoreLocal(e.Name, r)
			}
			return
		}
		addr := c.bin.Globals[e.Name]
		c.enc.Store(addr, r, 8)
		if shadow {
			c.enc.Store(addr+ShadowDelta, r, 8)
		}
	case *minic.Index, *minic.Unary:
		a := c.alloc()
		c.evalAddr(e, a)
		c.enc.StoreReg(a, 0, r, 8)
		if shadow {
			c.enc.AddImm(a, a, int32(ShadowDelta))
			c.enc.StoreReg(a, 0, r, 8)
		}
		c.free(a)
	default:
		panic(fmt.Sprintf("compile: bad lvalue %T", lhs))
	}
}

// shadowStoreLocal duplicates a local-slot store into the shadow page. The
// slot address must be computed at run time (FP-relative).
func (c *cg) shadowStoreLocal(name string, r uint8) {
	a := c.alloc()
	c.enc.AddImm(a, isa.RegFP, -c.locals[name])
	c.enc.AddImm(a, a, int32(ShadowDelta))
	c.enc.StoreReg(a, 0, r, 8)
	c.free(a)
}

// evalAddr computes the address of an lvalue into dst.
func (c *cg) evalAddr(lv minic.Expr, dst uint8) {
	switch e := lv.(type) {
	case *minic.Ident:
		if off, ok := c.locals[e.Name]; ok {
			c.enc.AddImm(dst, isa.RegFP, -off)
			return
		}
		c.enc.MovImm(dst, int64(c.bin.Globals[e.Name]))
	case *minic.Index:
		c.evalExpr(e.Idx, dst)
		t := c.alloc()
		c.enc.MovImm(t, 8)
		c.enc.ALU(isa.OpMUL, dst, dst, t)
		if off, ok := c.locals[e.Name]; ok {
			c.enc.AddImm(t, isa.RegFP, -off)
		} else {
			c.enc.MovImm(t, int64(c.bin.Globals[e.Name]))
		}
		c.enc.ALU(isa.OpADD, dst, dst, t)
		c.free(t)
	case *minic.Unary: // *p: the address is p's value
		if e.Op != "*" {
			panic("compile: evalAddr of non-lvalue unary")
		}
		c.evalExpr(e.X, dst)
	default:
		panic(fmt.Sprintf("compile: evalAddr of %T", lv))
	}
}

// evalExpr evaluates x into dst (an allocated scratch register or any
// caller-chosen register).
func (c *cg) evalExpr(x minic.Expr, dst uint8) {
	switch e := x.(type) {
	case *minic.IntLit:
		c.enc.MovImm(dst, e.V)
	case *minic.Ident:
		if off, ok := c.locals[e.Name]; ok {
			c.enc.LoadReg(dst, isa.RegFP, -off, 8)
			return
		}
		c.enc.Load(dst, c.bin.Globals[e.Name], 8)
	case *minic.Index:
		c.evalAddr(e, dst)
		c.enc.LoadReg(dst, dst, 0, 8)
	case *minic.Unary:
		switch e.Op {
		case "-":
			c.evalExpr(e.X, dst)
			t := c.alloc()
			c.enc.MovImm(t, 0)
			c.enc.ALU(isa.OpSUB, dst, t, dst)
			c.free(t)
		case "!":
			c.evalExpr(e.X, dst)
			t := c.alloc()
			c.enc.MovImm(t, 0)
			c.enc.ALU(isa.OpCEQ, dst, dst, t)
			c.free(t)
		case "*":
			c.evalExpr(e.X, dst) // read the pointer variable
			c.enc.LoadReg(dst, dst, 0, 8)
		case "&":
			c.evalAddr(e.X, dst)
		}
	case *minic.Binary:
		c.evalExpr(e.X, dst)
		t := c.alloc()
		c.evalExpr(e.Y, t)
		switch e.Op {
		case "+":
			c.enc.ALU(isa.OpADD, dst, dst, t)
		case "-":
			c.enc.ALU(isa.OpSUB, dst, dst, t)
		case "*":
			c.enc.ALU(isa.OpMUL, dst, dst, t)
		case "/":
			c.enc.ALU(isa.OpDIV, dst, dst, t)
		case "%":
			c.enc.ALU(isa.OpMOD, dst, dst, t)
		case "&":
			c.enc.ALU(isa.OpAND, dst, dst, t)
		case "|":
			c.enc.ALU(isa.OpOR, dst, dst, t)
		case "^":
			c.enc.ALU(isa.OpXOR, dst, dst, t)
		case "<<":
			c.enc.ALU(isa.OpSHL, dst, dst, t)
		case ">>":
			c.enc.ALU(isa.OpSHR, dst, dst, t)
		case "==":
			c.enc.ALU(isa.OpCEQ, dst, dst, t)
		case "!=":
			c.enc.ALU(isa.OpCNE, dst, dst, t)
		case "<":
			c.enc.ALU(isa.OpCLT, dst, dst, t)
		case "<=":
			c.enc.ALU(isa.OpCLE, dst, dst, t)
		case ">":
			c.enc.ALU(isa.OpCGT, dst, dst, t)
		case ">=":
			c.enc.ALU(isa.OpCGE, dst, dst, t)
		case "&&", "||":
			// Non-short-circuit boolean: normalize both to 0/1, then
			// AND/OR.
			z := c.alloc()
			c.enc.MovImm(z, 0)
			c.enc.ALU(isa.OpCNE, dst, dst, z)
			c.enc.ALU(isa.OpCNE, t, t, z)
			c.free(z)
			if e.Op == "&&" {
				c.enc.ALU(isa.OpAND, dst, dst, t)
			} else {
				c.enc.ALU(isa.OpOR, dst, dst, t)
			}
		default:
			panic("compile: unknown binary op " + e.Op)
		}
		c.free(t)
	case *minic.Call:
		c.call(e, dst)
	default:
		panic(fmt.Sprintf("compile: unknown expression %T", x))
	}
}

func (c *cg) call(e *minic.Call, dst uint8) {
	if _, ok := minic.IsBuiltin(e.Name); ok {
		c.builtin(e, dst)
		return
	}
	// User call. Registers the callee may clobber and whose values this
	// expression still needs are saved around the call.
	saved := []uint8{}
	for _, r := range c.allocatedScratch() {
		if r != dst {
			saved = append(saved, r)
		}
	}
	for _, r := range saved {
		c.enc.Push(r)
	}
	// Arguments are staged on the stack — one scratch register suffices
	// regardless of arity, and nested calls inside later arguments cannot
	// clobber earlier ones.
	for _, a := range e.Args {
		r := c.alloc()
		c.evalExpr(a, r)
		c.enc.Push(r)
		c.free(r)
	}
	for i := len(e.Args) - 1; i >= 0; i-- {
		c.enc.Pop(uint8(argRegLo + i))
	}
	c.enc.Call("fn_" + e.Name)
	c.enc.MovReg(dst, 0)
	for i := len(saved) - 1; i >= 0; i-- {
		c.enc.Pop(saved[i])
	}
}

// builtin lowers a builtin call to a SYS instruction. Arguments go in
// R0/R1; lock and unlock receive the address of their operand.
func (c *cg) builtin(e *minic.Call, dst uint8) {
	// Save live scratch registers that overlap the syscall argument
	// registers R1..R4.
	saved := []uint8{}
	for _, r := range c.allocatedScratch() {
		if r != dst && r >= 1 && r <= 4 {
			saved = append(saved, r)
		}
	}
	for _, r := range saved {
		c.enc.Push(r)
	}
	switch e.Name {
	case "exit":
		c.enc.Sys(isa.SysExit)
	case "lock", "unlock":
		a := c.alloc()
		c.evalAddr(e.Args[0], a)
		c.enc.MovReg(0, a)
		c.free(a)
		if e.Name == "lock" {
			c.enc.Sys(isa.SysLock)
		} else {
			c.enc.Sys(isa.SysUnlock)
		}
	case "yield":
		c.enc.Sys(isa.SysYield)
	case "sleep":
		a := c.alloc()
		c.evalExpr(e.Args[0], a)
		c.enc.MovReg(0, a)
		c.free(a)
		c.enc.Sys(isa.SysSleep)
	case "print":
		a := c.alloc()
		c.evalExpr(e.Args[0], a)
		c.enc.MovReg(0, a)
		c.free(a)
		c.enc.Sys(isa.SysPrint)
	case "spawn":
		fn := e.Args[0].(*minic.Ident).Name
		a := c.alloc()
		c.evalExpr(e.Args[1], a)
		c.enc.MovReg(1, a)
		c.free(a)
		c.enc.MovLabel(0, "fn_"+fn)
		c.enc.Sys(isa.SysSpawn)
	case "rand":
		c.enc.Sys(isa.SysRand)
	case "recv":
		c.enc.Sys(isa.SysRecv)
	case "send":
		a := c.alloc()
		c.evalExpr(e.Args[0], a)
		c.enc.MovReg(0, a)
		c.free(a)
		c.enc.Sys(isa.SysSend)
	case "nanos":
		c.enc.Sys(isa.SysNanos)
	default:
		panic("compile: unknown builtin " + e.Name)
	}
	c.enc.MovReg(dst, 0)
	for i := len(saved) - 1; i >= 0; i-- {
		c.enc.Pop(saved[i])
	}
}
