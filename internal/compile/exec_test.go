package compile_test

// Execution-level tests of the code generator: each construct is compiled
// and run on the VM, asserting observable results. (The vm package's
// differential tests fuzz the same surface; these pin each construct
// individually so a failure names the construct.)

import (
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/compile"
	"kivati/internal/kernel"
	"kivati/internal/minic"
	"kivati/internal/vm"
)

func exec(t *testing.T, src string, opts compile.Options, kcfg kernel.Config) []int64 {
	t.Helper()
	prog, err := annotateSrc(t, src)
	if err != nil {
		t.Fatalf("annotate: %v", err)
	}
	bin, err := compile.Compile(prog, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if kcfg.NumWatchpoints == 0 {
		kcfg.NumWatchpoints = 4
	}
	k := kernel.New(kcfg, nil, nil, nil)
	m, err := vm.New(bin, k, vm.Config{Cores: 2, Seed: 1, MaxTicks: 50_000_000})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	if _, err := m.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(res.Faults) > 0 {
		t.Fatalf("faults: %v", res.Faults)
	}
	if res.Reason != "completed" {
		t.Fatalf("reason %q", res.Reason)
	}
	return res.Output
}

func annotateSrc(t *testing.T, src string) (*annotate.Program, error) {
	t.Helper()
	prog, err := parse(src)
	if err != nil {
		return nil, err
	}
	return annotate.Annotate(prog)
}

func wantOutput(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAllBinaryOps(t *testing.T) {
	src := `
void main() {
    int a;
    int b;
    a = 29;
    b = 5;
    print(a + b);
    print(a - b);
    print(a * b);
    print(a / b);
    print(a % b);
    print(a & b);
    print(a | b);
    print(a ^ b);
    print(a << 2);
    print(a >> 2);
    print(a == b);
    print(a != b);
    print(a < b);
    print(a <= b);
    print(a > b);
    print(a >= b);
    print(a && 0);
    print(a && b);
    print(0 || 0);
    print(0 || b);
}`
	got := exec(t, src, compile.Options{}, kernel.Config{})
	wantOutput(t, got, 34, 24, 145, 5, 4, 5, 29, 24, 116, 7,
		0, 1, 0, 0, 1, 1, 0, 1, 0, 1)
}

func TestUnaryOps(t *testing.T) {
	got := exec(t, `
void main() {
    int a;
    a = 7;
    print(-a);
    print(!a);
    print(!0);
    print(-(-a));
}`, compile.Options{}, kernel.Config{})
	wantOutput(t, got, -7, 0, 1, 7)
}

func TestPointerToArrayElement(t *testing.T) {
	got := exec(t, `
int arr[4];
int *p;
void main() {
    p = &arr[2];
    *p = 9;
    print(arr[2]);
    print(*p + arr[2]);
}`, compile.Options{Annotate: true}, kernel.Config{})
	wantOutput(t, got, 9, 18)
}

func TestPointerToLocal(t *testing.T) {
	got := exec(t, `
int *p;
void main() {
    int x;
    p = &x;
    *p = 31;
    print(x);
}`, compile.Options{Annotate: true}, kernel.Config{})
	wantOutput(t, got, 31)
}

func TestSixArgumentCall(t *testing.T) {
	got := exec(t, `
int f(int a, int b, int c, int d, int e, int g) {
    return a + b * 10 + c * 100 + d * 1000 + e * 10000 + g * 100000;
}
void main() {
    print(f(1, 2, 3, 4, 5, 6));
}`, compile.Options{}, kernel.Config{})
	wantOutput(t, got, 654321)
}

func TestReturnWithAnnotations(t *testing.T) {
	// A return statement carrying end_atomic annotations must preserve the
	// return value across the R0/R1-clobbering syscall.
	got := exec(t, `
int s;
int get() {
    s = 5;
    return s + 37;
}
void main() {
    print(get());
}`, compile.Options{Annotate: true}, kernel.Config{Opt: kernel.OptBase})
	wantOutput(t, got, 42)
}

func TestConditionWithAnnotations(t *testing.T) {
	// if/while conditions carrying end_atomic annotations must preserve
	// the condition register.
	got := exec(t, `
int s;
void main() {
    int n;
    s = 3;
    n = 0;
    while (s > 0) {
        s = s - 1;
        n = n + 1;
    }
    if (s == 0) {
        print(n);
    } else {
        print(0 - 1);
    }
}`, compile.Options{Annotate: true}, kernel.Config{Opt: kernel.OptBase})
	wantOutput(t, got, 3)
}

func TestShadowLocalStore(t *testing.T) {
	// A write-first AR on an LSV local triggers the shadow-store-to-local
	// path under ShadowWrites.
	got := exec(t, `
int g;
void main() {
    int t;
    t = g + 1;
    print(t);
    t = t + 1;
    print(t);
}`, compile.Options{Annotate: true, ShadowWrites: true},
		kernel.Config{Opt: kernel.OptOptimized, ShadowDelta: compile.ShadowDelta})
	wantOutput(t, got, 1, 2)
}

func TestVoidCallStatementAndNestedBuiltins(t *testing.T) {
	got := exec(t, `
int g;
void bump(int by) {
    g = g + by;
}
void main() {
    bump(4);
    bump(g);
    sleep(10);
    yield();
    print(g + (nanos() & 0) + (rand() & 0));
}`, compile.Options{Annotate: true}, kernel.Config{})
	wantOutput(t, got, 8)
}

func TestElseIfChains(t *testing.T) {
	got := exec(t, `
void main() {
    int x;
    x = 2;
    if (x == 0) {
        print(100);
    } else if (x == 1) {
        print(200);
    } else if (x == 2) {
        print(300);
    } else {
        print(400);
    }
}`, compile.Options{}, kernel.Config{})
	wantOutput(t, got, 300)
}

func TestGlobalPointerThroughFunctions(t *testing.T) {
	got := exec(t, `
int g = 5;
int *acquire() {
    return &g;
}
void bump(int *p) {
    *p = *p + 1;
}
void main() {
    int *q;
    q = acquire();
    bump(q);
    bump(acquire());
    print(g);
}`, compile.Options{Annotate: true}, kernel.Config{Opt: kernel.OptBase})
	wantOutput(t, got, 7)
}

func parse(src string) (*minic.Program, error) { return minic.Parse(src) }
