package compile

import (
	"strings"
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/isa"
	"kivati/internal/minic"
)

func build(t *testing.T, src string, opts Options) *Binary {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ap, err := annotate.Annotate(prog)
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	bin, err := Compile(ap, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return bin
}

func disasm(t *testing.T, bin *Binary) string {
	t.Helper()
	lines, err := isa.Disassemble(bin.Code)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	return strings.Join(lines, "\n")
}

const simpleSrc = `
int s;
int lk;
void f() {
    int t;
    t = s;
    lock(lk);
    s = t + 1;
    unlock(lk);
}`

func TestCompileDecodes(t *testing.T) {
	bin := build(t, simpleSrc, Options{Annotate: true})
	// The whole binary must decode cleanly (Disassemble walks every
	// instruction).
	text := disasm(t, bin)
	for _, want := range []string{"SYS begin_atomic", "SYS end_atomic", "SYS clear_ar", "SYS lock", "SYS unlock", "RET"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestVanillaHasNoAnnotations(t *testing.T) {
	bin := build(t, simpleSrc, Options{Annotate: false})
	text := disasm(t, bin)
	for _, bad := range []string{"begin_atomic", "end_atomic", "clear_ar"} {
		if strings.Contains(text, bad) {
			t.Errorf("vanilla binary contains %q", bad)
		}
	}
	if !strings.Contains(text, "SYS lock") {
		t.Error("vanilla binary lost the lock call")
	}
}

func TestGlobalLayout(t *testing.T) {
	bin := build(t, "int a;\nint b = 9;\nint arr[3];\nint c;\nvoid f() { }", Options{})
	if bin.Globals["a"] != GlobalsBase {
		t.Errorf("a at %#x", bin.Globals["a"])
	}
	if bin.Globals["b"] != GlobalsBase+8 {
		t.Errorf("b at %#x", bin.Globals["b"])
	}
	if bin.Globals["arr"] != GlobalsBase+16 {
		t.Errorf("arr at %#x", bin.Globals["arr"])
	}
	if bin.Globals["c"] != GlobalsBase+16+24 {
		t.Errorf("c at %#x (array must occupy 3 slots)", bin.Globals["c"])
	}
	if bin.InitMem[bin.Globals["b"]] != 9 {
		t.Errorf("b init = %d", bin.InitMem[bin.Globals["b"]])
	}
}

func TestSyncVarsCollected(t *testing.T) {
	bin := build(t, simpleSrc, Options{Annotate: true})
	if !bin.SyncVars["lk"] {
		t.Errorf("SyncVars = %v, want lk", bin.SyncVars)
	}
	if bin.SyncVars["s"] {
		t.Error("s wrongly marked as sync var")
	}
}

func TestBoundaryTableCoversStores(t *testing.T) {
	bin := build(t, simpleSrc, Options{Annotate: true})
	if bin.Boundary.NumAccessInstrs() == 0 {
		t.Fatal("boundary table empty")
	}
	// Every function entry is recorded.
	for name, pc := range bin.Funcs {
		if !bin.Boundary.IsFuncEntry(pc) {
			t.Errorf("entry of %s (%#x) not in boundary table", name, pc)
		}
	}
}

func TestShadowWritesEmitted(t *testing.T) {
	// s = 1; t = s  gives a (W,R) AR on s, so the store must be
	// duplicated into the shadow page when ShadowWrites is on.
	src := "int s;\nvoid f() { int t; s = 1; t = s; }"
	with := build(t, src, Options{Annotate: true, ShadowWrites: true})
	without := build(t, src, Options{Annotate: true})
	sAddr := with.Globals["s"]
	dWith := disasm(t, with)
	dWithout := disasm(t, without)
	shadowStore := "ST8 [" + hex(sAddr+ShadowDelta) + "]"
	if !strings.Contains(dWith, shadowStore) {
		t.Errorf("shadow store %s missing:\n%s", shadowStore, dWith)
	}
	if strings.Contains(dWithout, shadowStore) {
		t.Error("shadow store emitted without ShadowWrites")
	}
}

func hex(v uint32) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0x0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return "0x" + string(buf[i:])
}

func TestPosAt(t *testing.T) {
	bin := build(t, simpleSrc, Options{Annotate: true})
	pc := bin.Funcs["f"]
	pos, ok := bin.PosAt(pc + 1)
	if !ok || pos.Line == 0 {
		t.Errorf("PosAt(%#x) = %v, %v", pc+1, pos, ok)
	}
	if _, ok := bin.PosAt(0); ok {
		t.Error("PosAt(0) should miss (exit stub)")
	}
}

func TestFuncAt(t *testing.T) {
	bin := build(t, "int a;\nvoid f() { a = 1; }\nvoid g() { a = 2; }", Options{})
	if got := bin.FuncAt(bin.Funcs["f"]); got != "f" {
		t.Errorf("FuncAt(f) = %q", got)
	}
	if got := bin.FuncAt(bin.Funcs["g"] + 3); got != "g" {
		t.Errorf("FuncAt(g+3) = %q", got)
	}
}

func TestTooManyParams(t *testing.T) {
	src := "void f(int a, int b, int c, int d, int e, int g, int h) { }"
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := annotate.Annotate(prog)
	if _, err := Compile(ap, Options{}); err == nil {
		t.Error("want error for >6 parameters")
	}
}

func TestStackTop(t *testing.T) {
	if StackTop(0) != StackBase+StackSize {
		t.Error("StackTop(0) wrong")
	}
	if StackTop(MaxThreads-1)+0 > ShadowDelta {
		t.Error("stacks overflow into shadow region")
	}
}

func TestSpawnUsesEntryPC(t *testing.T) {
	bin := build(t, `
int x;
void w(int id) { x = id; }
void main() { spawn(w, 3); }`, Options{})
	text := disasm(t, bin)
	if !strings.Contains(text, "SYS spawn") {
		t.Error("spawn syscall missing")
	}
	// The MOVL feeding spawn must carry w's entry PC.
	wpc := int64(bin.Funcs["w"])
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "MOVL r0, ") && strings.HasSuffix(line, itoa(wpc)) {
			found = true
		}
	}
	if !found {
		t.Errorf("no MOVL r0, %d (entry of w) found:\n%s", wpc, text)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
