package compile

// Memory layout of a compiled program. Addresses are 32-bit. The upper half
// of memory mirrors the lower half as the shadow page shared between the
// user-space Kivati library and the kernel (optimization 3, §3.4): the
// compiler duplicates first-local-write stores to addr+ShadowDelta so the
// kernel can undo remote writes without having trapped on the local write.
const (
	// GlobalsBase is where global variables are laid out.
	GlobalsBase uint32 = 0x1000

	// StackBase is the bottom of the first thread's stack region; thread t
	// owns [StackBase + t*StackSize, StackBase + (t+1)*StackSize). Stacks
	// grow downward from the top of their region.
	StackBase uint32 = 0x40000

	// StackSize is the per-thread stack region size.
	StackSize uint32 = 0x10000

	// MaxThreads bounds thread IDs so stacks fit below the shadow region.
	MaxThreads = 48

	// ShadowDelta is the offset of the shadow mirror.
	ShadowDelta uint32 = 0x400000

	// MemSize is the total memory size.
	MemSize uint32 = 0x800000
)

// StackTop returns the initial stack pointer for thread tid.
func StackTop(tid int) uint32 {
	return StackBase + uint32(tid+1)*StackSize
}
