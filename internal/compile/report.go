// Footprint diagnostics for kivati-annotate -footprints: a per-basic-block
// view of the suffix footprint table with escape attribution, so a
// residency regression can be traced to the instruction that unbounded its
// block without running a benchmark.
package compile

import "kivati/internal/isa"

// BlockFootprint is one diagnostic row: the footprint of the straight-line
// window entered at a basic-block leader, and — when it escaped to
// Unbounded — the instruction that caused the escape.
type BlockFootprint struct {
	Fn     string // containing function
	PC     uint32 // block leader
	Instrs int    // instructions in the basic block
	FP     isa.Footprint
	// CausePC/CauseOp identify the escape-causing instruction (the deepest
	// unbounded access or untrackable SP/FP overwrite in the window) when
	// FP.Unbounded.
	CausePC  uint32
	CauseOp  isa.Instr
	HasCause bool
}

// FootprintReport recomputes the analyzed footprint table for bin and
// returns one row per basic block of each compiled function, in PC order.
func FootprintReport(bin *Binary) ([]BlockFootprint, error) {
	decoded, starts, err := isa.DecodeProgram(bin.Code)
	if err != nil {
		return nil, err
	}
	fps, cause := suffixFootprints(decoded, starts, valrangeAnalysis(decoded, bin.FuncEntries))

	var rows []BlockFootprint
	leaders := blockLeaders(decoded, starts)
	for _, pc := range starts {
		if !leaders[pc] {
			continue
		}
		fn := bin.FuncAt(pc)
		if fn == "" {
			continue // exit stub
		}
		row := BlockFootprint{Fn: fn, PC: pc, FP: fps[pc]}
		end := pc
		for int(end) < len(decoded) && decoded[end].Len > 0 {
			in := decoded[end]
			row.Instrs++
			end += uint32(in.Len)
			if in.Op.IsControlFlow() || in.Op.IsKernelBoundary() || leaders[end] {
				break
			}
		}
		if c, ok := cause[pc]; ok {
			row.CausePC, row.CauseOp, row.HasCause = c, decoded[c], true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// blockLeaders marks basic-block leader PCs across the whole image: every
// jump target, every instruction after a control transfer or kernel
// boundary, and the image start.
func blockLeaders(decoded []isa.Instr, starts []uint32) map[uint32]bool {
	leaders := map[uint32]bool{}
	if len(starts) > 0 {
		leaders[starts[0]] = true
	}
	for _, pc := range starts {
		in := decoded[pc]
		next := pc + uint32(in.Len)
		switch in.Op {
		case isa.OpJMP, isa.OpJZ, isa.OpJNZ:
			if int(in.Addr) < len(decoded) && decoded[in.Addr].Len > 0 {
				leaders[in.Addr] = true
			}
			leaders[next] = true
		case isa.OpCALL, isa.OpCALLM, isa.OpRET, isa.OpHLT, isa.OpSYS:
			leaders[next] = true
		}
	}
	return leaders
}
