// Static basic-block address footprints (the fast path's disjointness
// oracle). For every instruction-start PC the table holds the footprint of
// the straight-line run the VM's superstep dispatcher may retire starting
// there — the exact suffix the per-PC blockLen table measures: nothing for
// kernel boundaries (the fast path never enters them), the instruction's
// own accesses for control flow (the block's last fast instruction), and
// the instruction's accesses unioned with the re-based suffix footprint
// otherwise. The reverse walk mirrors vm.buildBlockLen so the two tables
// describe the same windows.
//
// Two entry points share the walk. Footprints is the raw-image path: only
// isa.InstrFootprint's register-relative tracking, so every access through
// a general base register escapes to Unbounded. FootprintsAnalyzed is the
// compiler's path: it first runs the valrange interval pass over the
// image's function regions and substitutes proved bounds for indirect
// accesses, so ring indices, masked offsets and loop-bounded array sweeps
// keep finite footprints and stay on the unchecked fast path.
package compile

import (
	"kivati/internal/isa"
	"kivati/internal/valrange"
)

// accessResolver supplies bounded footprints for individual accesses the
// instruction-local tracking cannot bound (satisfied by *valrange.Analysis).
type accessResolver interface {
	AccessFootprint(pc uint32) (isa.Footprint, bool)
}

// Footprints computes the per-PC suffix footprint table for a binary image.
// The result is indexed by PC; entries at non-start offsets are empty.
func Footprints(code []byte) ([]isa.Footprint, error) {
	decoded, starts, err := isa.DecodeProgram(code)
	if err != nil {
		return nil, err
	}
	fps, _ := suffixFootprints(decoded, starts, nil)
	return fps, nil
}

// FootprintsAnalyzed computes the table with value-range analysis over the
// given function entry PCs: indirect accesses whose address intervals the
// pass proves get tight bounds instead of Unbounded.
func FootprintsAnalyzed(code []byte, entries []uint32) ([]isa.Footprint, error) {
	decoded, starts, err := isa.DecodeProgram(code)
	if err != nil {
		return nil, err
	}
	fps, _ := suffixFootprints(decoded, starts, valrangeAnalysis(decoded, entries))
	return fps, nil
}

// valrangeAnalysis runs the interval pass with layout-derived options.
func valrangeAnalysis(decoded []isa.Instr, entries []uint32) *valrange.Analysis {
	return valrange.AnalyzeDecoded(decoded, entries, valrangeOptions())
}

// valrangeOptions derives the analysis options from the memory layout: the
// thread-stack region is what absolute stores must provably miss for frame
// slot facts to survive them.
func valrangeOptions() valrange.Options {
	return valrange.Options{
		StackLo: StackBase,
		StackHi: StackBase + MaxThreads*StackSize,
	}
}

// suffixFootprints runs the reverse walk over pre-decoded instructions.
// rv, when non-nil, is consulted for accesses whose instruction-local
// footprint is Unbounded. cause maps each PC whose suffix footprint is
// Unbounded to the PC of the instruction that caused the escape (the
// deepest unbounded access or untrackable SP/FP overwrite in the window).
func suffixFootprints(decoded []isa.Instr, starts []uint32, rv accessResolver) (fps []isa.Footprint, cause map[uint32]uint32) {
	fps = make([]isa.Footprint, len(decoded))
	cause = make(map[uint32]uint32)
	own := func(pc uint32, in isa.Instr) isa.Footprint {
		f := isa.InstrFootprint(in)
		if f.Unbounded && rv != nil {
			if rf, ok := rv.AccessFootprint(pc); ok {
				return rf
			}
		}
		return f
	}
	for i := len(starts) - 1; i >= 0; i-- {
		pc := starts[i]
		in := decoded[pc]
		switch {
		case in.Op.IsKernelBoundary():
			// blockLen is 0: the fast path never executes this PC.
		case in.Op.IsControlFlow():
			fps[pc] = own(pc, in)
			if fps[pc].Unbounded {
				cause[pc] = pc
			}
		default:
			f := own(pc, in)
			ownUnbounded := f.Unbounded
			if next := pc + uint32(in.Len); int(next) < len(decoded) {
				f = f.UnionWith(fps[next].Rebase(in))
				if f.Unbounded && !ownUnbounded {
					if c, ok := cause[next]; ok {
						cause[pc] = c
					} else {
						// The escape came from Rebase (an untrackable
						// SP/FP overwrite at this instruction).
						cause[pc] = pc
					}
				}
			}
			if ownUnbounded {
				cause[pc] = pc
			}
			fps[pc] = f
		}
	}
	return fps, cause
}
