// Static basic-block address footprints (the fast path's disjointness
// oracle). For every instruction-start PC the table holds the footprint of
// the straight-line run the VM's superstep dispatcher may retire starting
// there — the exact suffix the per-PC blockLen table measures: nothing for
// kernel boundaries (the fast path never enters them), the instruction's
// own accesses for control flow (the block's last fast instruction), and
// the instruction's accesses unioned with the re-based suffix footprint
// otherwise. The reverse walk mirrors vm.buildBlockLen so the two tables
// describe the same windows.
package compile

import "kivati/internal/isa"

// Footprints computes the per-PC suffix footprint table for a binary image.
// The result is indexed by PC; entries at non-start offsets are empty.
func Footprints(code []byte) ([]isa.Footprint, error) {
	decoded, starts, err := isa.DecodeProgram(code)
	if err != nil {
		return nil, err
	}
	return suffixFootprints(decoded, starts), nil
}

// suffixFootprints runs the reverse walk over pre-decoded instructions.
func suffixFootprints(decoded []isa.Instr, starts []uint32) []isa.Footprint {
	fps := make([]isa.Footprint, len(decoded))
	for i := len(starts) - 1; i >= 0; i-- {
		pc := starts[i]
		in := decoded[pc]
		switch {
		case in.Op.IsKernelBoundary():
			// blockLen is 0: the fast path never executes this PC.
		case in.Op.IsControlFlow():
			fps[pc] = isa.InstrFootprint(in)
		default:
			f := isa.InstrFootprint(in)
			if next := pc + uint32(in.Len); int(next) < len(decoded) {
				f = f.UnionWith(fps[next].Rebase(in))
			}
			fps[pc] = f
		}
	}
	return fps
}
