package compile_test

// Tests for the static basic-block footprint pass (the fast path's
// disjointness oracle): unit tests for the block shapes the dispatcher
// meets — straight-line, branch-terminated, indirect-access — and a
// fuzz-style property test that the access set a straight-line run actually
// executes is always contained in its static footprint evaluated at the
// run's entry registers.

import (
	"math/rand"
	"testing"

	"kivati/internal/compile"
	"kivati/internal/isa"
)

func footprints(t *testing.T, build func(e *isa.Encoder)) []isa.Footprint {
	t.Helper()
	e := isa.NewEncoder()
	build(e)
	code, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	fps, err := compile.Footprints(code)
	if err != nil {
		t.Fatalf("Footprints: %v", err)
	}
	return fps
}

func TestFootprintStraightLine(t *testing.T) {
	var sysPC uint32
	fps := footprints(t, func(e *isa.Encoder) {
		e.Load(1, 0x1000, 8)  // abs read [0x1000, 0x1008)
		e.Store(0x2000, 1, 4) // abs write [0x2000, 0x2004)
		e.MovImm(2, 7)        // no access
		sysPC = e.PC()
		e.Sys(isa.SysExit) // kernel boundary: block ends before it
	})
	f := fps[0]
	if f.Unbounded {
		t.Fatal("straight-line global block marked Unbounded")
	}
	if f.AbsLo != 0x1000 || f.AbsHi != 0x2004 {
		t.Errorf("abs interval = [%#x, %#x), want [0x1000, 0x2004)", f.AbsLo, f.AbsHi)
	}
	if f.SPHi != f.SPLo || f.FPHi != f.FPLo {
		t.Errorf("stack intervals non-empty: SP [%d,%d) FP [%d,%d)", f.SPLo, f.SPHi, f.FPLo, f.FPHi)
	}
	// The SYS pc itself must have an empty footprint — the fast path never
	// dispatches it (blockLen 0).
	if f := fps[sysPC]; !f.Empty() {
		t.Errorf("SYS footprint = %+v, want empty", f)
	}
}

func TestFootprintBranchTerminated(t *testing.T) {
	var loadPC, jnzPC, storePC uint32
	fps := footprints(t, func(e *isa.Encoder) {
		loadPC = e.PC()
		e.Load(1, 0x1000, 8)
		jnzPC = e.PC()
		e.Jnz(1, "out")
		storePC = e.PC()
		e.Store(0x3000, 1, 8)
		e.Label("out")
		e.Hlt()
	})
	// A control-flow instruction ends its block: its footprint is its own
	// accesses only (none for JNZ), not the fall-through successor's.
	if f := fps[jnzPC]; !f.Empty() {
		t.Errorf("JNZ footprint = %+v, want empty", f)
	}
	// The block entered at the load spans load + branch and stops there: the
	// store behind the branch must not leak in.
	if f := fps[loadPC]; f.Unbounded || f.AbsLo != 0x1000 || f.AbsHi != 0x1008 {
		t.Errorf("block footprint = %+v, want abs [0x1000, 0x1008)", f)
	}
	if f := fps[storePC]; f.AbsLo != 0x3000 || f.AbsHi != 0x3008 {
		t.Errorf("store-block footprint = %+v, want abs [0x3000, 0x3008)", f)
	}
}

func TestFootprintIndirectEscapes(t *testing.T) {
	var topPC uint32
	fps := footprints(t, func(e *isa.Encoder) {
		topPC = e.PC()
		e.MovImm(2, 0x4000)
		e.LoadReg(1, 2, 0, 8) // pointer access through R2: untrackable
		e.Hlt()
	})
	if f := fps[topPC]; !f.Unbounded {
		t.Errorf("block with pointer access not Unbounded: %+v", f)
	}
}

func TestFootprintStackIdioms(t *testing.T) {
	// The compiler's prologue idiom. Relative to the entry registers the
	// block touches [SP-16, SP): the PUSH writes [SP-8, SP) and the
	// FP-relative store, after FP := SP-8, writes [SP-16, SP-8).
	fps := footprints(t, func(e *isa.Encoder) {
		e.Push(isa.RegFP)
		e.MovReg(isa.RegFP, isa.RegSP)
		e.AddImm(isa.RegSP, isa.RegSP, -32)
		e.StoreReg(isa.RegFP, -8, 3, 8)
		e.Sys(isa.SysExit)
	})
	f := fps[0]
	if f.Unbounded {
		t.Fatal("prologue block marked Unbounded")
	}
	if f.AbsHi != f.AbsLo {
		t.Errorf("abs interval non-empty: [%#x, %#x)", f.AbsLo, f.AbsHi)
	}
	if f.SPLo != -16 || f.SPHi != 0 {
		t.Errorf("SP interval = [%d, %d), want [-16, 0)", f.SPLo, f.SPHi)
	}
	if f.FPHi != f.FPLo {
		t.Errorf("FP interval leaked through re-basing: [%d, %d)", f.FPLo, f.FPHi)
	}
}

func TestFootprintOverwrittenSPEscapes(t *testing.T) {
	fps := footprints(t, func(e *isa.Encoder) {
		e.MovImm(isa.RegSP, 0x50000) // untracked SP overwrite
		e.Push(1)                    // stack access relative to the new SP
		e.Hlt()
	})
	if f := fps[0]; !f.Unbounded {
		t.Errorf("stack access behind SP overwrite not Unbounded: %+v", f)
	}
}

func TestCompiledBinaryHasFootprints(t *testing.T) {
	prog, err := annotateSrc(t, `
		int g;
		void main() {
			int x = 3;
			g = x + 4;
		}
	`)
	if err != nil {
		t.Fatalf("annotate: %v", err)
	}
	bin, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if bin.Footprints == nil {
		t.Fatal("compiled Binary has no footprint table")
	}
	if len(bin.Footprints) != len(bin.Code) {
		t.Fatalf("footprint table len %d, code len %d", len(bin.Footprints), len(bin.Code))
	}
	fps2, err := compile.FootprintsAnalyzed(bin.Code, bin.FuncEntries)
	if err != nil {
		t.Fatalf("FootprintsAnalyzed: %v", err)
	}
	for pc := range fps2 {
		if fps2[pc] != bin.Footprints[pc] {
			t.Fatalf("pc %#x: recomputed footprint %+v != stored %+v", pc, fps2[pc], bin.Footprints[pc])
		}
	}
}

// TestFootprintAnalyzedBoundedLoop pins the tentpole win end to end: a
// static-length loop over a fixed global array compiles to indirect
// accesses whose base+index the value-range analysis can bound, so the
// compiled binary's footprint table must not contain a single Unbounded
// entry inside main — where the legacy syntactic pass gives up on the very
// first LDR/STR through a general register.
func TestFootprintAnalyzedBoundedLoop(t *testing.T) {
	prog, err := annotateSrc(t, `
		int arr[8];
		int sum;
		void main() {
			int i = 0;
			while (i < 8) {
				arr[i] = arr[i] + i;
				i = i + 1;
			}
			sum = arr[3];
		}
	`)
	if err != nil {
		t.Fatalf("annotate: %v", err)
	}
	bin, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	legacy, err := compile.Footprints(bin.Code)
	if err != nil {
		t.Fatalf("Footprints: %v", err)
	}
	legacyUnbounded, analyzedUnbounded := 0, 0
	for pc, f := range bin.Footprints {
		if bin.FuncAt(uint32(pc)) != "main" {
			continue
		}
		if legacy[pc].Unbounded {
			legacyUnbounded++
		}
		if f.Unbounded {
			analyzedUnbounded++
			t.Errorf("pc %#x: analyzed footprint still Unbounded", pc)
		}
	}
	if legacyUnbounded == 0 {
		t.Fatal("test program exercises no indirect access (legacy pass never gave up)")
	}
	if analyzedUnbounded == 0 {
		t.Logf("analysis bounded all %d blocks the legacy pass left Unbounded", legacyUnbounded)
	}
}

// TestFootprintAnalyzedUnboundedStaysUnbounded: an index loaded from memory
// is beyond the analysis (LD results are Top), so the block must stay
// Unbounded — the demotion counter split depends on this being honest.
func TestFootprintAnalyzedUnboundedStaysUnbounded(t *testing.T) {
	prog, err := annotateSrc(t, `
		int arr[8];
		int idx;
		int out;
		void main() {
			out = arr[idx];
		}
	`)
	if err != nil {
		t.Fatalf("annotate: %v", err)
	}
	bin, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	unbounded := 0
	for pc, f := range bin.Footprints {
		if bin.FuncAt(uint32(pc)) == "main" && f.Unbounded {
			unbounded++
		}
	}
	if unbounded == 0 {
		t.Fatal("memory-loaded index bounded: analysis is claiming knowledge it cannot have")
	}
}

// miniRun interprets a straight-line instruction sequence with the legacy
// interpreter's data semantics, recording every memory access. Memory is a
// sparse zero-default map, so the run never faults; division ops are not
// generated.
type miniAccess struct {
	addr uint32
	sz   uint8
}

func miniRun(t *testing.T, code []byte, regs *[isa.NumRegs]int64) []miniAccess {
	t.Helper()
	mem := map[uint32]byte{}
	load := func(addr uint32, sz uint8) uint64 {
		var v uint64
		for i := uint8(0); i < sz; i++ {
			v |= uint64(mem[addr+uint32(i)]) << (8 * i)
		}
		return v
	}
	store := func(addr uint32, sz uint8, v uint64) {
		for i := uint8(0); i < sz; i++ {
			mem[addr+uint32(i)] = byte(v >> (8 * i))
		}
	}
	signExtend := func(v uint64, sz uint8) int64 {
		switch sz {
		case 1:
			return int64(int8(v))
		case 2:
			return int64(int16(v))
		case 4:
			return int64(int32(v))
		}
		return int64(v)
	}
	var accs []miniAccess
	r := regs
	for pc := uint32(0); int(pc) < len(code); {
		in, err := isa.Decode(code, pc)
		if err != nil {
			t.Fatalf("decode at %#x: %v", pc, err)
		}
		op := in.Op
		if op.IsKernelBoundary() || op.IsControlFlow() {
			return accs
		}
		switch {
		case op == isa.OpNOP:
		case op == isa.OpMOVQ || op == isa.OpMOVL:
			r[in.Rd] = in.Imm
		case op == isa.OpMOVR:
			r[in.Rd] = r[in.Ra]
		case op == isa.OpADD:
			r[in.Rd] = r[in.Ra] + r[in.Rb]
		case op == isa.OpADDI:
			r[in.Rd] = r[in.Ra] + in.Imm
		case op >= isa.OpLD && op < isa.OpLD+4:
			accs = append(accs, miniAccess{in.Addr, in.Sz})
			r[in.Rd] = signExtend(load(in.Addr, in.Sz), in.Sz)
		case op >= isa.OpST && op < isa.OpST+4:
			accs = append(accs, miniAccess{in.Addr, in.Sz})
			store(in.Addr, in.Sz, uint64(r[in.Ra]))
		case op >= isa.OpLDR && op < isa.OpLDR+4:
			addr := uint32(r[in.Ra] + in.Imm)
			accs = append(accs, miniAccess{addr, in.Sz})
			r[in.Rd] = signExtend(load(addr, in.Sz), in.Sz)
		case op >= isa.OpSTR && op < isa.OpSTR+4:
			addr := uint32(r[in.Ra] + in.Imm)
			accs = append(accs, miniAccess{addr, in.Sz})
			store(addr, in.Sz, uint64(r[in.Rb]))
		case op == isa.OpPUSH:
			sp := uint32(r[isa.RegSP]) - 8
			accs = append(accs, miniAccess{sp, 8})
			r[isa.RegSP] = int64(sp)
			store(sp, 8, uint64(r[in.Ra]))
		case op == isa.OpPOP:
			sp := uint32(r[isa.RegSP])
			accs = append(accs, miniAccess{sp, 8})
			r[in.Rd] = int64(load(sp, 8))
			r[isa.RegSP] = int64(sp + 8)
		case op >= isa.OpPUSHM && op < isa.OpPUSHM+4:
			accs = append(accs, miniAccess{in.Addr, in.Sz})
			v := signExtend(load(in.Addr, in.Sz), in.Sz)
			sp := uint32(r[isa.RegSP]) - 8
			accs = append(accs, miniAccess{sp, 8})
			r[isa.RegSP] = int64(sp)
			store(sp, 8, uint64(v))
		default:
			t.Fatalf("miniRun: unexpected op %v", op)
		}
		pc += uint32(in.Len)
	}
	return accs
}

// TestFootprintContainmentProperty is the fuzz-style soundness check: for
// random straight-line sequences and random entry registers, every executed
// access must lie inside the static footprint of the sequence's entry pc
// (evaluated against the entry SP/FP), unless the footprint escaped to
// Unbounded. It also pins the escape rule itself: a sequence containing a
// general-register-based access must be Unbounded.
func TestFootprintContainmentProperty(t *testing.T) {
	sizes := []int{1, 2, 4, 8}
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := isa.NewEncoder()
		hasIndirect := false
		n := 1 + rng.Intn(24)
		for i := 0; i < n; i++ {
			sz := sizes[rng.Intn(4)]
			gaddr := uint32(0x1000 + rng.Intn(0x4000))
			switch rng.Intn(12) {
			case 0:
				e.MovImm(uint8(rng.Intn(16)), int64(0x20000+rng.Intn(0x100000)))
			case 1:
				e.MovReg(uint8(rng.Intn(16)), uint8(rng.Intn(16)))
			case 2:
				e.ALU(isa.OpADD, uint8(rng.Intn(14)), uint8(rng.Intn(16)), uint8(rng.Intn(16)))
			case 3:
				e.AddImm(uint8(rng.Intn(16)), uint8(rng.Intn(16)), int32(rng.Intn(129)-64))
			case 4:
				e.Load(uint8(rng.Intn(14)), gaddr, sz)
			case 5:
				e.Store(gaddr, uint8(rng.Intn(16)), sz)
			case 6:
				base := uint8(isa.RegSP)
				if rng.Intn(2) == 0 {
					base = isa.RegFP
				}
				if rng.Intn(4) == 0 {
					base = uint8(rng.Intn(14))
					hasIndirect = true
				}
				e.LoadReg(uint8(rng.Intn(14)), base, int32(rng.Intn(257)-128), sz)
			case 7:
				base := uint8(isa.RegSP)
				if rng.Intn(2) == 0 {
					base = isa.RegFP
				}
				if rng.Intn(4) == 0 {
					base = uint8(rng.Intn(14))
					hasIndirect = true
				}
				e.StoreReg(base, int32(rng.Intn(257)-128), uint8(rng.Intn(14)), sz)
			case 8:
				e.Push(uint8(rng.Intn(16)))
			case 9:
				e.Pop(uint8(rng.Intn(14)))
			case 10:
				e.PushMem(gaddr, sz)
			case 11:
				e.Nop()
			}
		}
		e.Hlt()
		code, err := e.Finish()
		if err != nil {
			t.Fatalf("seed %d: Finish: %v", seed, err)
		}
		fps, err := compile.Footprints(code)
		if err != nil {
			t.Fatalf("seed %d: Footprints: %v", seed, err)
		}
		f := fps[0]
		if hasIndirect && !f.Unbounded {
			t.Fatalf("seed %d: general-register access but footprint bounded: %+v", seed, f)
		}
		if f.Unbounded {
			continue // every access is trivially covered
		}

		var regs [isa.NumRegs]int64
		for i := range regs {
			regs[i] = int64(0x100000 + rng.Intn(0x80000))
		}
		entrySP := int64(uint32(regs[isa.RegSP]))
		entryFP := int64(uint32(regs[isa.RegFP]))
		accs := miniRun(t, code, &regs)
		covered := func(b int64) bool {
			if f.AbsHi > f.AbsLo && b >= int64(f.AbsLo) && b < int64(f.AbsHi) {
				return true
			}
			if f.SPHi > f.SPLo && b >= entrySP+f.SPLo && b < entrySP+f.SPHi {
				return true
			}
			if f.FPHi > f.FPLo && b >= entryFP+f.FPLo && b < entryFP+f.FPHi {
				return true
			}
			return false
		}
		for _, a := range accs {
			for i := uint8(0); i < a.sz; i++ {
				if !covered(int64(a.addr) + int64(i)) {
					t.Fatalf("seed %d: access byte %#x outside footprint %+v (entry SP %#x FP %#x)",
						seed, a.addr+uint32(i), f, entrySP, entryFP)
				}
			}
		}
	}
}
