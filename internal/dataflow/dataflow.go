// Package dataflow provides a small forward data-flow analysis framework
// over control-flow graphs: a worklist fixpoint solver parameterized by a
// join-semilattice of facts. Both of the annotator's analyses — the list of
// shared variables and the reaching-access pairing — are instances.
package dataflow

import "kivati/internal/cfg"

// Facts is the lattice element attached to each program point. Implementations
// must be pure: Join and TransferOut return new values (or unchanged
// receivers) and never mutate their arguments.
type Facts interface {
	// Equal reports whether two fact sets are equal (fixpoint test).
	Equal(other Facts) bool
}

// Analysis defines one forward data-flow problem.
type Analysis interface {
	// Bottom returns the initial fact set for every node.
	Bottom() Facts
	// Entry returns the fact set entering the CFG entry node.
	Entry() Facts
	// Join merges fact sets arriving over multiple predecessors.
	Join(a, b Facts) Facts
	// Transfer computes the node's output facts from its input facts.
	Transfer(n *cfg.Node, in Facts) Facts
}

// Result holds the fixpoint solution: facts on entry to and exit from each
// node, indexed by node ID.
type Result struct {
	In  []Facts
	Out []Facts
}

// Solve runs the worklist algorithm to fixpoint. The solution is maximal for
// monotone transfer functions over finite lattices, which both annotator
// analyses satisfy (set union, gen-only transfer).
func Solve(g *cfg.Graph, a Analysis) *Result {
	res := &Result{
		In:  make([]Facts, len(g.Nodes)),
		Out: make([]Facts, len(g.Nodes)),
	}
	for _, n := range g.Nodes {
		res.In[n.ID] = a.Bottom()
		res.Out[n.ID] = a.Bottom()
	}
	res.In[g.Entry.ID] = a.Entry()
	res.Out[g.Entry.ID] = a.Transfer(g.Entry, res.In[g.Entry.ID])

	work := make([]*cfg.Node, 0, len(g.Nodes))
	inWork := make([]bool, len(g.Nodes))
	push := func(n *cfg.Node) {
		if !inWork[n.ID] {
			inWork[n.ID] = true
			work = append(work, n)
		}
	}
	for _, n := range g.Nodes {
		push(n)
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n.ID] = false

		in := res.In[n.ID]
		if n == g.Entry {
			in = a.Entry()
		}
		for _, p := range n.Preds {
			in = a.Join(in, res.Out[p.ID])
		}
		out := a.Transfer(n, in)
		res.In[n.ID] = in
		if !out.Equal(res.Out[n.ID]) {
			res.Out[n.ID] = out
			for _, s := range n.Succs {
				push(s)
			}
		}
	}
	return res
}
