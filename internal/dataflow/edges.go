// Indexed edge-fact solver: a second worklist fixpoint engine for analyses
// over plain integer-indexed graphs (the binary basic-block CFGs of
// cfg.BuildBinary) whose transfer functions produce one fact per outgoing
// edge — the shape branch refinement needs, where the two sides of a
// conditional jump learn different things. Unlike Solve it supports
// infinite-height lattices through a widening operator applied at caller-
// designated nodes (loop heads), plus a visit-count failsafe that forces
// widening everywhere if a misclassified graph would otherwise diverge.
package dataflow

// EdgeAnalysis defines one forward data-flow problem over an indexed graph.
// Facts follow the same purity contract as Analysis: Join, Widen and Flow
// return new (or unchanged) values and never mutate their arguments.
type EdgeAnalysis interface {
	// Bottom returns the fact for unreachable program points (the join
	// identity).
	Bottom() Facts
	// Entry returns the fact entering graph entry node n.
	Entry(n int) Facts
	// Join merges facts arriving over multiple incoming edges.
	Join(a, b Facts) Facts
	// Widen extrapolates old toward new so chains of strictly growing
	// facts terminate; the result must over-approximate Join(old, new).
	Widen(old, new Facts) Facts
	// Flow computes the node's per-edge output facts from its input fact,
	// one per successor, aligned with the succs slice the solver was given.
	Flow(n int, in Facts) []Facts
}

// EdgeResult holds the fixpoint: the fact entering each node.
type EdgeResult struct {
	In []Facts
}

// solveMaxVisits is the failsafe: once a node has been recomputed this many
// times, every further update to it widens regardless of widenAt, so the
// fixpoint terminates even if a back-edge target was not designated.
const solveMaxVisits = 64

// SolveEdges runs the worklist algorithm over a graph of numNodes nodes
// with successor function succs, entry nodes entries, and widening applied
// at nodes where widenAt reports true (loop heads). The input fact of a
// node is the join of its predecessors' corresponding edge outputs (plus
// Entry for entry nodes); nodes joined from nothing keep Bottom and their
// Flow results are still propagated (an analysis should map Bottom through
// unchanged).
func SolveEdges(numNodes int, succs func(int) []int, entries []int, widenAt func(int) bool, a EdgeAnalysis) *EdgeResult {
	res := &EdgeResult{In: make([]Facts, numNodes)}
	for n := 0; n < numNodes; n++ {
		res.In[n] = a.Bottom()
	}
	// edgeOut[n][i] is the fact Flow(n) produced for successor i.
	edgeOut := make([][]Facts, numNodes)

	work := make([]int, 0, numNodes)
	inWork := make([]bool, numNodes)
	push := func(n int) {
		if !inWork[n] {
			inWork[n] = true
			work = append(work, n)
		}
	}
	isEntry := make([]bool, numNodes)
	for _, e := range entries {
		res.In[e] = a.Entry(e)
		isEntry[e] = true
		push(e)
	}
	visits := make([]int, numNodes)

	// preds[n] lists (pred node, edge index) pairs so a node's input can be
	// recomputed from its incoming edge facts.
	type inEdge struct{ n, i int }
	preds := make([][]inEdge, numNodes)
	for n := 0; n < numNodes; n++ {
		for i, s := range succs(n) {
			preds[s] = append(preds[s], inEdge{n, i})
		}
	}

	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n] = false

		in := a.Bottom()
		if isEntry[n] {
			in = a.Entry(n)
		}
		for _, e := range preds[n] {
			if edgeOut[e.n] == nil {
				continue
			}
			in = a.Join(in, edgeOut[e.n][e.i])
		}
		if visits[n] > 0 {
			if widenAt(n) || visits[n] >= solveMaxVisits {
				in = a.Widen(res.In[n], in)
			}
			if in.Equal(res.In[n]) && edgeOut[n] != nil {
				continue
			}
		}
		visits[n]++
		res.In[n] = in
		outs := a.Flow(n, in)
		changed := edgeOut[n] == nil
		if !changed {
			for i := range outs {
				if !outs[i].Equal(edgeOut[n][i]) {
					changed = true
					break
				}
			}
		}
		edgeOut[n] = outs
		if changed {
			for _, s := range succs(n) {
				push(s)
			}
		}
	}
	return res
}
