package dataflow

import (
	"testing"

	"kivati/internal/cfg"
	"kivati/internal/minic"
)

// bitset is a tiny lattice for testing the solver: sets of statement IDs
// that have executed on some path (a reachability analysis).
type bitset map[int]bool

func (s bitset) Equal(other Facts) bool {
	o := other.(bitset)
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// seenAnalysis accumulates the IDs of all nodes on any path to a point.
type seenAnalysis struct{}

func (seenAnalysis) Bottom() Facts { return bitset{} }
func (seenAnalysis) Entry() Facts  { return bitset{} }
func (seenAnalysis) Join(a, b Facts) Facts {
	out := bitset{}
	for k := range a.(bitset) {
		out[k] = true
	}
	for k := range b.(bitset) {
		out[k] = true
	}
	return out
}
func (seenAnalysis) Transfer(n *cfg.Node, in Facts) Facts {
	out := bitset{}
	for k := range in.(bitset) {
		out[k] = true
	}
	out[n.ID] = true
	return out
}

func buildCFG(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Build(prog.Funcs[0])
}

func TestSolveStraightLine(t *testing.T) {
	g := buildCFG(t, "int a;\nvoid f() { a = 1; a = 2; a = 3; }")
	res := Solve(g, seenAnalysis{})
	out := res.Out[g.Exit.ID].(bitset)
	// Exit must have seen every node.
	for _, n := range g.Nodes {
		if !out[n.ID] {
			t.Errorf("exit facts missing node %v", n)
		}
	}
	// The first statement's IN contains only the entry.
	s1 := g.Entry.Succs[0]
	in := res.In[s1.ID].(bitset)
	if len(in) != 1 || !in[g.Entry.ID] {
		t.Errorf("s1 IN = %v", in)
	}
}

func TestSolveBranches(t *testing.T) {
	g := buildCFG(t, "int a;\nvoid f() { if (a) { a = 1; } else { a = 2; } a = 3; }")
	res := Solve(g, seenAnalysis{})
	// The join statement's IN includes both branch statements.
	var joinNode *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindStmt {
			if as, ok := n.Stmt.(*minic.AssignStmt); ok {
				if lit, ok := as.RHS.(*minic.IntLit); ok && lit.V == 3 {
					joinNode = n
				}
			}
		}
	}
	if joinNode == nil {
		t.Fatal("join node not found")
	}
	in := res.In[joinNode.ID].(bitset)
	branchCount := 0
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindStmt && n != joinNode && in[n.ID] {
			branchCount++
		}
	}
	if branchCount != 2 {
		t.Errorf("join IN saw %d branch statements, want 2", branchCount)
	}
}

func TestSolveLoopFixpoint(t *testing.T) {
	g := buildCFG(t, "int a;\nvoid f() { while (a) { a = a - 1; } }")
	res := Solve(g, seenAnalysis{})
	// The loop condition's IN must include the body (via the back edge).
	cond := g.Entry.Succs[0]
	in := res.In[cond.ID].(bitset)
	body := cond.Succs[0]
	if !in[body.ID] {
		t.Errorf("cond IN missing loop body: %v", in)
	}
	// And the solver terminated (implicitly) with a consistent solution:
	// every node's OUT = Transfer(IN).
	for _, n := range g.Nodes {
		want := (seenAnalysis{}).Transfer(n, res.In[n.ID])
		if !want.Equal(res.Out[n.ID]) {
			t.Errorf("node %v: OUT inconsistent with Transfer(IN)", n)
		}
	}
}
