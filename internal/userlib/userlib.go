// Package userlib implements Kivati's user-space library (§3.4): a replica
// of the AR table and watchpoint metadata that lets begin_atomic and
// end_atomic avoid kernel crossings whenever no hardware watchpoint register
// actually needs to change. In this simulation the replica and the kernel
// state are the same structures (the paper keeps them consistent through a
// shared page); what the library decides is whether a *crossing* — the
// dominant cost — happens.
//
// The four optimizations:
//
//  1. User-space pre-processing: skip the kernel when there is no free
//     watchpoint (log a missed AR), or when an existing watchpoint of this
//     thread already covers the begin's address, size and access type.
//  2. Lazy release: an end_atomic that would free or shrink a watchpoint
//     just marks the user-space copy; the hardware is reconciled on the
//     next kernel entry or trap.
//  3. Local-thread watchpoint disable with shadow-page write replication
//     (configured at arm time by the kernel; the compiler emits the shadow
//     stores).
//  4. Synchronization-variable whitelist: whitelisted ARs return without
//     entering the kernel at all.
package userlib

import (
	"kivati/internal/hw"
	"kivati/internal/kernel"
)

// Decision says how an annotation was handled.
type Decision int

const (
	// EnterKernel: the annotation needs a kernel crossing.
	EnterKernel Decision = iota
	// SkipWhitelisted: whitelisted AR; returned directly from user space.
	SkipWhitelisted
	// SkipUserHandled: fully handled by the user-space library.
	SkipUserHandled
)

// Begin decides how to handle a begin_atomic and performs the user-space
// bookkeeping when the kernel can be skipped.
func Begin(k *kernel.Kernel, t int, syscallPC uint32, arID int, addr uint32, size uint8, watch, first hw.AccessType) Decision {
	if k.Cfg.Opt.UseWhitelist() && k.WL.Contains(arID) {
		k.Stats.WhitelistSkips++
		return SkipWhitelisted
	}
	if !k.Cfg.Opt.UseUserLib() {
		return EnterKernel
	}
	// A re-executed begin for an AR we already hold (loop iteration) is a
	// pure refresh: no hardware change, no crossing.
	if ar := k.FindAR(t, arID); ar != nil && ar.Addr == addr && ar.WP >= 0 {
		k.RefreshAR(ar)
		k.Stats.UserHandled++
		return SkipUserHandled
	}
	// Another thread's AR watches this address: the kernel must suspend
	// us (prevention, §3.3).
	if k.WatchedByOther(t, addr, size, first) >= 0 {
		return EnterKernel
	}
	// An existing watchpoint of ours already covers this begin: attach in
	// user space, no hardware change (optimization 1).
	if idx := k.OwnWP(t, addr); idx >= 0 {
		wp := k.Canon.WPs[idx]
		if wp.Types&watch == watch && wp.Size >= size {
			k.AttachUser(t, syscallPC, arID, addr, size, watch, first, idx)
			k.Stats.MonitoredARs++
			k.Stats.UserHandled++
			return SkipUserHandled
		}
		return EnterKernel // needs a type/size upgrade
	}
	// No watchpoint register free — the armed count saturates the table —
	// so log the missed AR in user space and skip the crossing
	// (optimization 1). Stale registers are only reclaimable in the
	// kernel, so their presence forces a crossing. Elided operations here
	// leave registers armed (live or stale), keeping the armed summary
	// nonzero so blocks whose footprint overlaps those registers keep
	// running checked — exactly right, since they can still trap.
	if k.Canon.ArmedCount() == len(k.Canon.WPs) {
		if k.HasStale() {
			return EnterKernel
		}
		k.Stats.RecordMissed(arID)
		k.Stats.UserHandled++
		return SkipUserHandled
	}
	return EnterKernel // arm a fresh watchpoint
}

// End decides how to handle an end_atomic and performs the user-space
// bookkeeping when the kernel can be skipped.
func End(k *kernel.Kernel, t int, arID int, second hw.AccessType) Decision {
	if k.Cfg.Opt.UseWhitelist() && k.WL.Contains(arID) {
		k.Stats.WhitelistSkips++
		return SkipWhitelisted
	}
	if !k.Cfg.Opt.UseUserLib() {
		return EnterKernel
	}
	ar := k.FindAR(t, arID)
	if ar == nil {
		if k.HasTimedOut(t, arID) {
			return EnterKernel // must record the unprevented violation
		}
		// No matching begin_atomic executed (or the AR was unmonitored):
		// skip the crossing (optimization 1).
		k.Stats.UserHandled++
		return SkipUserHandled
	}
	if ar.WP >= 0 {
		m := k.Meta[ar.WP]
		if len(ar.Remotes) > 0 || len(m.TrapSuspended) > 0 || len(m.BeginSuspended) > 0 {
			// Violation evaluation and thread wakeups are kernel work.
			return EnterKernel
		}
	}
	// Pure release: detach in user space; a freed watchpoint is left
	// armed and marked stale, a shrunken union is left at the more
	// aggressive setting (optimization 2).
	k.DetachUser(ar)
	k.Stats.UserHandled++
	return SkipUserHandled
}

// Clear decides how to handle a clear_ar.
func Clear(k *kernel.Kernel, t int, depth int) Decision {
	if !k.Cfg.Opt.UseUserLib() {
		return EnterKernel
	}
	needKernel := false
	any := false
	for _, ar := range k.ActiveARs(t) {
		if ar.Depth < depth {
			continue
		}
		any = true
		if ar.WP >= 0 {
			m := k.Meta[ar.WP]
			if len(ar.Remotes) > 0 || len(m.TrapSuspended) > 0 || len(m.BeginSuspended) > 0 {
				needKernel = true
			}
		}
	}
	if needKernel || k.AnyTimedOutAtDepth(t, depth) {
		return EnterKernel
	}
	if !any {
		k.Stats.UserHandled++
		return SkipUserHandled
	}
	k.ClearUser(t, depth)
	k.Stats.UserHandled++
	return SkipUserHandled
}
