package userlib

import (
	"testing"

	"kivati/internal/hw"
	"kivati/internal/isa"
	"kivati/internal/kernel"
	"kivati/internal/whitelist"
)

// stubMachine is a minimal kernel.Machine for decision-logic tests.
type stubMachine struct {
	mem    [1 << 12]byte
	depths map[int]int
}

func (m *stubMachine) Now() uint64                       { return 0 }
func (m *stubMachine) NumCores() int                     { return 2 }
func (m *stubMachine) Suspend(int, kernel.BlockKind)     {}
func (m *stubMachine) Resume(int)                        {}
func (m *stubMachine) SetWakeAt(int, uint64)             {}
func (m *stubMachine) SetEpochTarget(int, uint64)        {}
func (m *stubMachine) ThreadDepth(tid int) int           { return m.depths[tid] }
func (m *stubMachine) PC(int) uint32                     { return 0 }
func (m *stubMachine) SetPC(int, uint32)                 {}
func (m *stubMachine) Reg(int, int) int64                { return 0 }
func (m *stubMachine) SetReg(int, int, int64)            {}
func (m *stubMachine) LastInstrPC(int) uint32            { return 0 }
func (m *stubMachine) Load(addr uint32, sz uint8) uint64 { return 0 }
func (m *stubMachine) Store(uint32, uint8, uint64)       {}
func (m *stubMachine) Boundary() *isa.BoundaryTable      { bt, _ := isa.Preprocess(nil, nil); return bt }
func (m *stubMachine) DecodeAt(uint32) (isa.Instr, bool) { return isa.Instr{}, false }
func (m *stubMachine) After(uint64, func())              {}
func (m *stubMachine) AfterTimeout(uint64, int, uint64)  {}
func (m *stubMachine) EpochChanged()                     {}

func newK(opt kernel.OptLevel, wl *whitelist.Whitelist) *kernel.Kernel {
	k := kernel.New(kernel.Config{Opt: opt, NumWatchpoints: 2}, wl, nil, nil)
	k.SetMachine(&stubMachine{depths: map[int]int{}})
	return k
}

func TestWhitelistedBeginSkips(t *testing.T) {
	k := newK(kernel.OptSyncVars, whitelist.FromIDs(7))
	if d := Begin(k, 1, 0, 7, 0x100, 8, hw.Write, hw.Read); d != SkipWhitelisted {
		t.Errorf("whitelisted begin: %v, want SkipWhitelisted", d)
	}
	if d := End(k, 1, 7, hw.Write); d != SkipWhitelisted {
		t.Errorf("whitelisted end: %v, want SkipWhitelisted", d)
	}
	if k.Stats.WhitelistSkips != 2 {
		t.Errorf("WhitelistSkips = %d", k.Stats.WhitelistSkips)
	}
	// Non-whitelisted AR still crosses (SyncVars has no userlib).
	if d := Begin(k, 1, 0, 8, 0x100, 8, hw.Write, hw.Read); d != EnterKernel {
		t.Errorf("non-whitelisted begin at syncvars: %v, want EnterKernel", d)
	}
}

func TestBaseAlwaysEnters(t *testing.T) {
	k := newK(kernel.OptBase, nil)
	if d := Begin(k, 1, 0, 1, 0x100, 8, hw.Write, hw.Read); d != EnterKernel {
		t.Errorf("base begin: %v", d)
	}
	if d := End(k, 1, 1, hw.Write); d != EnterKernel {
		t.Errorf("base end: %v", d)
	}
	if d := Clear(k, 1, 0); d != EnterKernel {
		t.Errorf("base clear: %v", d)
	}
}

func TestOptimizedBeginPaths(t *testing.T) {
	k := newK(kernel.OptOptimized, nil)

	// Fresh address: must enter the kernel to arm.
	if d := Begin(k, 1, 0x10, 1, 0x100, 8, hw.Write, hw.Read); d != EnterKernel {
		t.Fatalf("fresh begin: %v", d)
	}
	k.BeginAtomic(1, 0x10, 1, 0x100, 8, hw.Write, hw.Read)

	// Re-begin of the same active AR: user-space refresh.
	if d := Begin(k, 1, 0x10, 1, 0x100, 8, hw.Write, hw.Read); d != SkipUserHandled {
		t.Errorf("re-begin: %v, want SkipUserHandled", d)
	}

	// A second AR on the same address with covered types: user-space attach.
	if d := Begin(k, 1, 0x14, 2, 0x100, 8, hw.Write, hw.Read); d != SkipUserHandled {
		t.Errorf("covered attach: %v, want SkipUserHandled", d)
	}
	if k.FindAR(1, 2) == nil {
		t.Error("user attach did not record the AR")
	}

	// An AR needing a type upgrade must cross.
	if d := Begin(k, 1, 0x18, 3, 0x100, 8, hw.Read, hw.Write); d != EnterKernel {
		t.Errorf("type-upgrade begin: %v, want EnterKernel", d)
	}

	// Another thread's watched address: the kernel must handle (suspend).
	if d := Begin(k, 2, 0x20, 9, 0x100, 8, hw.Read, hw.Write); d != EnterKernel {
		t.Errorf("remote-watched begin: %v, want EnterKernel", d)
	}
}

func TestOptimizedExhaustionSkips(t *testing.T) {
	k := newK(kernel.OptOptimized, nil) // 2 watchpoints
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	k.BeginAtomic(1, 0, 2, 0x200, 8, hw.Write, hw.Read)
	// Third distinct address: no free register, no stale — skip and log.
	if d := Begin(k, 1, 0, 3, 0x300, 8, hw.Write, hw.Read); d != SkipUserHandled {
		t.Fatalf("exhausted begin: %v, want SkipUserHandled", d)
	}
	if k.Stats.MissedARs != 1 {
		t.Errorf("MissedARs = %d", k.Stats.MissedARs)
	}
}

func TestOptimizedStaleForcesCrossing(t *testing.T) {
	k := newK(kernel.OptOptimized, nil)
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	k.BeginAtomic(1, 0, 2, 0x200, 8, hw.Write, hw.Read)
	// Lazily release one: hardware still armed, logically free.
	if d := End(k, 1, 1, hw.Write); d != SkipUserHandled {
		t.Fatalf("pure-release end: %v, want SkipUserHandled", d)
	}
	if !k.HasStale() {
		t.Fatal("no stale watchpoint after user-space end")
	}
	// A new address now requires a crossing (stale reclaim).
	if d := Begin(k, 1, 0, 3, 0x300, 8, hw.Write, hw.Read); d != EnterKernel {
		t.Errorf("begin with stale present: %v, want EnterKernel", d)
	}
}

func TestEndPaths(t *testing.T) {
	k := newK(kernel.OptOptimized, nil)
	// Unmatched end: skip.
	if d := End(k, 1, 42, hw.Write); d != SkipUserHandled {
		t.Errorf("unmatched end: %v", d)
	}
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	// End with pending remote records must cross.
	ar := k.FindAR(1, 1)
	ar.Remotes = append(ar.Remotes, kernel.RemoteRec{Thread: 2, Type: hw.Write, Undone: true})
	if d := End(k, 1, 1, hw.Write); d != EnterKernel {
		t.Errorf("end with remotes: %v, want EnterKernel", d)
	}
}

func TestClearPaths(t *testing.T) {
	k := newK(kernel.OptOptimized, nil)
	// No ARs: pure skip.
	if d := Clear(k, 1, 0); d != SkipUserHandled {
		t.Errorf("empty clear: %v", d)
	}
	// Clean ARs: user-space clear.
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	if d := Clear(k, 1, 0); d != SkipUserHandled {
		t.Errorf("clean clear: %v", d)
	}
	if k.FindAR(1, 1) != nil {
		t.Error("user-space clear left the AR active")
	}
	// ARs with pending remotes: kernel.
	k.BeginAtomic(1, 0, 2, 0x200, 8, hw.Write, hw.Read)
	ar := k.FindAR(1, 2)
	ar.Remotes = append(ar.Remotes, kernel.RemoteRec{Thread: 2, Type: hw.Write})
	if d := Clear(k, 1, 0); d != EnterKernel {
		t.Errorf("dirty clear: %v, want EnterKernel", d)
	}
}
